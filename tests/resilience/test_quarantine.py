"""Per-pattern fault isolation: batch compiles never abort, quarantine
reports are exact, and survivors still match the oracle."""

import random
import string

import pytest

from repro.compiler.pipeline import CompilerOptions, compile_ruleset
from repro.matching import PatternSet
from repro.matching.oracle import match_ends as oracle_match_ends
from repro.regex.parser import parse
from repro.resilience import (
    Budget,
    BudgetExceededError,
    CompileReport,
    summarize,
)


class TestCompileRulesetQuarantine:
    def test_mixed_batch_compiles_survivors(self):
        options = CompilerOptions(budget=Budget(max_unfold=10_000))
        ruleset = compile_ruleset(
            ["ab{3}c", "bad(", "x{1,100000000}y", "a{5,20}"], options
        )
        assert [r.regex_id for r in ruleset.regexes] == [0, 3]
        statuses = [r.status for r in ruleset.reports]
        assert statuses == ["ok", "quarantined", "quarantined", "ok"]
        assert ruleset.reports[1].error_code == "E_SYNTAX"
        assert ruleset.reports[1].phase == "parse"
        assert ruleset.reports[2].error_code == "E_BUDGET"
        assert ruleset.reports[2].phase == "rewrite"

    def test_one_report_per_input_pattern_in_order(self):
        patterns = ["ok", "(((", "a{3}", ")bad", "xy"]
        ruleset = compile_ruleset(patterns)
        assert [r.pattern_id for r in ruleset.reports] == [0, 1, 2, 3, 4]
        assert [r.pattern for r in ruleset.reports] == patterns

    def test_quarantined_property_keyed_by_id(self):
        ruleset = compile_ruleset(["ok", "((("])
        assert set(ruleset.quarantined) == {1}
        assert ruleset.quarantined[1].error_code == "E_SYNTAX"

    def test_elapsed_recorded(self):
        ruleset = compile_ruleset(["ab{3}c"])
        assert ruleset.reports[0].elapsed_s >= 0.0

    def test_deadline_still_aborts_batch(self):
        options = CompilerOptions(budget=Budget(deadline_s=0.0))
        with pytest.raises(BudgetExceededError):
            compile_ruleset(["a", "b"], options)

    def test_summary_rollup(self):
        ruleset = compile_ruleset(["ok", "(((", "xy"])
        summary = summarize(ruleset.reports)
        assert summary.compiled == 2
        assert summary.quarantined == 1
        assert summary.by_code() == {"E_SYNTAX": 1}

    def test_report_json_round_trip(self):
        ruleset = compile_ruleset(["((("])
        doc = ruleset.reports[0].to_json()
        assert doc["status"] == "quarantined"
        assert doc["error_code"] == "E_SYNTAX"
        assert doc["pattern"] == "((("


def _mutate(rng: random.Random, pattern: str) -> str:
    """Randomly corrupt a valid pattern (unbalanced delimiters, stray
    operators, truncations) to fuzz the quarantine path."""
    breakers = ["(", ")", "[", "{2,", "*", "?", "\\"]
    choice = rng.randrange(4)
    if choice == 0:
        pos = rng.randrange(len(pattern) + 1)
        return pattern[:pos] + rng.choice(breakers) + pattern[pos:]
    if choice == 1:
        return pattern[: rng.randrange(len(pattern))]
    if choice == 2:
        return rng.choice(breakers) + pattern
    return pattern + rng.choice(breakers)


class TestQuarantineFuzz:
    def test_batch_never_aborts(self):
        rng = random.Random(1234)
        valid = ["ab{3}c", "x[0-9]{2}y", "(pq|rs)t", "a{2,9}b", "z+q?"]
        for _ in range(40):
            batch = []
            for _ in range(rng.randrange(1, 8)):
                pattern = rng.choice(valid)
                if rng.random() < 0.5:
                    pattern = _mutate(rng, pattern)
                batch.append(pattern)
            ruleset = compile_ruleset(batch)  # must not raise
            assert len(ruleset.reports) == len(batch)
            ok_ids = {r.regex_id for r in ruleset.regexes}
            for report in ruleset.reports:
                if report.pattern_id in ok_ids:
                    assert report.ok
                else:
                    assert report.quarantined
                    assert report.error_code is not None
                    assert report.error

    def test_random_garbage_never_aborts(self):
        rng = random.Random(99)
        alphabet = string.printable
        for _ in range(60):
            batch = [
                "".join(rng.choice(alphabet) for _ in range(rng.randrange(1, 12)))
                for _ in range(rng.randrange(1, 5))
            ]
            ruleset = compile_ruleset(batch)  # must not raise
            assert len(ruleset.reports) == len(batch)


class TestPatternSetQuarantine:
    def test_raise_is_default(self):
        with pytest.raises(ValueError):
            PatternSet(["ok", "((("])

    def test_quarantine_mode_keeps_original_ids(self):
        ps = PatternSet(["ab", "bad(", "cd"], on_error="quarantine")
        assert set(ps.quarantined) == {1}
        matches = [(m.pattern_id, m.end) for m in ps.scan(b"ab cd")]
        assert matches == [(0, 1), (2, 4)]

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            PatternSet(["a"], on_error="ignore")

    @pytest.mark.parametrize("engine", ["ah", "nfa", "fused"])
    def test_survivors_match_oracle(self, engine):
        """Acceptance: a ruleset with one invalid and one budget-busting
        pattern still compiles the rest, and the survivors' match stream
        equals the brute-force oracle."""
        patterns = ["ab{3}c", "bad(", "x{1,100000000}y", "a{2,5}b"]
        ps = PatternSet(
            patterns,
            engine=engine,
            budget=Budget(max_unfold=10_000),
            on_error="quarantine",
        )
        assert {r.pattern_id for r in ps.reports if r.quarantined} == {1, 2}
        data = b"zabbbc aab abbb aaaaab abbbc"
        got = {}
        for match in ps.scan(data):
            got.setdefault(match.pattern_id, []).append(match.end)
        for pattern_id in (0, 3):
            expected = oracle_match_ends(parse(patterns[pattern_id]), data)
            assert got.get(pattern_id, []) == expected, patterns[pattern_id]

    def test_all_quarantined_scans_empty(self):
        ps = PatternSet(["(((", ")"], on_error="quarantine", engine="fused")
        assert ps.scan(b"anything") == []
        assert len(ps.quarantined) == 2

    def test_reports_shape(self):
        ps = PatternSet(["a", "((("], on_error="quarantine")
        assert all(isinstance(r, CompileReport) for r in ps.reports)
        assert [r.status for r in ps.reports] == ["ok", "quarantined"]
