"""Acceptance guard: with budgets and degradation disabled, the fused
scan hot loop must stay within 1.15x of the raw fused matcher."""

from repro import telemetry
from repro.matching import PatternSet
from repro.matching.fused import FusedMatcher, fuse_patterns

from .._perf import measure_pair, skip_if_loaded

PATTERNS = ["ab{10}c", "x[0-9]{4}y", "zq"]
DATA = b"abbbbbbbbbbc x0123y zq padding " * 40
ROUNDS = 7


def _raw_fused_scan(matcher, data):
    """The un-wrapped baseline: FusedMatcher.feed from a fresh state."""
    matcher.reset()
    return matcher.feed(data)


def test_disabled_budgets_fused_overhead_within_bound():
    skip_if_loaded()
    assert not telemetry.enabled()
    ps = PatternSet(PATTERNS, engine="fused")
    assert ps.budget.unlimited() and ps.degradation is None
    raw = FusedMatcher(fuse_patterns(ps.compiled))

    # Warm both paths (allocation, successor caches) before timing.
    ps.scan(DATA)
    _raw_fused_scan(raw, DATA)

    wrapped, baseline = measure_pair(
        lambda: ps.scan(DATA),
        lambda: _raw_fused_scan(raw, DATA),
        rounds=ROUNDS,
    )

    # The disabled path adds one budget/degradation test per feed call
    # (not per byte) plus Match construction; 1.15x leaves ample noise
    # margin and the epsilon guards very fast machines.
    assert wrapped <= baseline * 1.15 + 1e-3, (
        f"budget-disabled fused scan {wrapped * 1e3:.3f} ms vs raw fused "
        f"baseline {baseline * 1e3:.3f} ms"
    )


def test_wrapped_and_raw_agree():
    ps = PatternSet(PATTERNS, engine="fused")
    raw = FusedMatcher(fuse_patterns(ps.compiled))
    assert [(m.pattern_id, m.end) for m in ps.scan(DATA)] == _raw_fused_scan(
        raw, DATA
    )
