"""Package-level API surface and doctest checks."""

import doctest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_exports(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_quickstart_from_docstring(self):
        ps = repro.PatternSet(["ab{100}c"])
        data = b"a" + b"b" * 100 + b"c"
        assert [m.end for m in ps.scan(data)] == [101]

    def test_compile_pattern_shortcut(self):
        compiled = repro.compile_pattern("ab{10}c")
        assert compiled.num_stes > 0

    def test_compile_ruleset_shortcut(self):
        ruleset = repro.compile_ruleset(["a", "b"])
        assert len(ruleset.regexes) == 2


class TestDoctests:
    def test_module_doctests(self):
        import repro.automata.bitvector
        import repro.matching.engine
        import repro.regex.charclass
        import repro.regex.parser

        for module in (
            repro.regex.charclass,
            repro.regex.parser,
            repro.automata.bitvector,
            repro.matching.engine,
        ):
            failures, _ = doctest.testmod(module)
            assert failures == 0, module.__name__


class TestSubpackageImports:
    def test_all_subpackages_import(self):
        import repro.analysis
        import repro.automata
        import repro.compiler
        import repro.hardware
        import repro.matching
        import repro.regex
        import repro.workloads

    def test_subpackage_all_lists_resolve(self):
        import repro.analysis
        import repro.automata
        import repro.compiler
        import repro.hardware
        import repro.matching
        import repro.regex
        import repro.workloads

        for package in (
            repro.regex,
            repro.automata,
            repro.compiler,
            repro.matching,
            repro.hardware,
            repro.workloads,
            repro.analysis,
        ):
            for name in package.__all__:
                assert getattr(package, name, None) is not None, (
                    package.__name__,
                    name,
                )
