"""Bitset NFA simulation tests."""

import pytest

from repro.automata.glushkov import glushkov
from repro.automata.nfa import NFA, NFAMatcher, _from_mask, _to_mask
from repro.regex.charclass import CharClass
from repro.regex.parser import parse
from repro.regex.rewrite import unfold_all


class TestMaskHelpers:
    def test_roundtrip(self):
        states = {0, 3, 7}
        assert _from_mask(_to_mask(states)) == states

    def test_empty(self):
        assert _to_mask(set()) == 0
        assert _from_mask(0) == set()


class TestMatcher:
    def test_step_returns_match_flag(self):
        nfa = glushkov(parse("ab"))
        matcher = nfa.matcher()
        assert not matcher.step(ord("a"))
        assert matcher.step(ord("b"))

    def test_reset_clears_state(self):
        nfa = glushkov(parse("ab"))
        matcher = nfa.matcher()
        matcher.step(ord("a"))
        matcher.reset()
        assert not matcher.step(ord("b"))

    def test_two_phase_availability(self):
        """A state only activates if available (predecessor active) AND
        matched by the symbol — the AP-style two-phase cycle (§3)."""
        nfa = glushkov(parse("ab"))
        matcher = nfa.matcher()
        matcher.step(ord("b"))  # 'b' matches state 1 but it is unavailable
        assert matcher.active_states() == set()

    def test_initial_states_always_available(self):
        nfa = glushkov(parse("ab"))
        matcher = nfa.matcher()
        for _ in range(3):
            matcher.step(ord("a"))
            assert 0 in matcher.active_states()

    def test_match_ends_multiple(self):
        nfa = glushkov(unfold_all(parse("a{2}")))
        assert nfa.match_ends(b"aaaa") == [1, 2, 3]

    def test_empty_input(self):
        nfa = glushkov(parse("a"))
        assert nfa.match_ends(b"") == []

    def test_large_unfolded_chain(self):
        nfa = glushkov(unfold_all(parse("a{500}b")))
        assert nfa.num_states == 501
        data = b"a" * 500 + b"b"
        assert nfa.match_ends(data) == [500]
        assert nfa.match_ends(b"a" * 499 + b"b") == []

    def test_active_count_matches_set(self):
        nfa = glushkov(parse("(a|ab|abc)"))
        matcher = nfa.matcher()
        matcher.step(ord("a"))
        assert matcher.active_count() == len(matcher.active_states())
