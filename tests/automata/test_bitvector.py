"""Unit tests for bit vectors (1-indexed, paper §2 conventions)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata import bitvector as bv
from repro.automata.bitvector import BitVector


class TestRawHelpers:
    def test_set1_is_position_one(self):
        assert bv.set1(5) == 1

    def test_set1_rejects_zero_width(self):
        with pytest.raises(ValueError):
            bv.set1(0)

    def test_shift_moves_up_one(self):
        # [1,0,1] -> [0,1,0,1...] within width 3 -> [0,1,0]? bit3 drops
        assert bv.shift(0b101, 3) == 0b010

    def test_shift_drops_top_bit(self):
        assert bv.shift(1 << 63, 64) == 0

    def test_shift_fills_zero_at_bottom(self):
        assert bv.shift(0b1, 4) & 1 == 0

    def test_read_bit_one_indexed(self):
        assert bv.read_bit(0b100, 3) == 1
        assert bv.read_bit(0b100, 1) == 0
        with pytest.raises(ValueError):
            bv.read_bit(1, 0)

    def test_read_range_prefix(self):
        assert bv.read_range(0b1000, 3) == 0
        assert bv.read_range(0b1000, 4) == 1

    def test_from_to_bits_roundtrip(self):
        bits = [1, 0, 1, 1, 0]
        assert bv.to_bits(bv.from_bits(bits), 5) == bits

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bv.from_bits([0, 2])


class TestBitVectorClass:
    def test_example_2_2_execution(self):
        """The q2 vector sequence from Fig. 1 for sigma* a sigma{3}."""
        v = BitVector.zeros(3)
        v = v.with_set1()  # after 'b' following 'a': [1,0,0]
        assert v.bits() == [1, 0, 0]
        v = v.shifted() | BitVector.zeros(3)  # 'a': [0,1,0]
        assert v.bits() == [0, 1, 0]
        v = v.shifted() | v.with_set1()  # 'a' while q1 active: [1,0,1]
        assert v.bits() == [1, 0, 1]
        assert v[3] == 1  # match reported

    def test_getitem_is_one_indexed(self):
        v = BitVector.from_bits([0, 1, 0])
        assert v[2] == 1
        with pytest.raises(IndexError):
            v[0]
        with pytest.raises(IndexError):
            v[4]

    def test_or_requires_same_width(self):
        with pytest.raises(ValueError):
            BitVector.zeros(3) | BitVector.zeros(4)

    def test_value_must_fit(self):
        with pytest.raises(ValueError):
            BitVector(8, 3)

    def test_immutable(self):
        v = BitVector.zeros(3)
        with pytest.raises(AttributeError):
            v.value = 1

    def test_read_range(self):
        v = BitVector.from_bits([0, 0, 1, 0])
        assert v.read_range(2) == 0
        assert v.read_range(3) == 1

    def test_popcount_and_zero(self):
        assert BitVector.from_bits([1, 0, 1]).popcount() == 2
        assert BitVector.zeros(2).is_zero()

    def test_hash_eq(self):
        assert BitVector.from_bits([1, 0]) == BitVector.from_bits([1, 0])
        assert BitVector.from_bits([1, 0]) != BitVector.from_bits([1, 0, 0])
        assert hash(BitVector(1, 2)) == hash(BitVector(1, 2))


@given(st.integers(min_value=1, max_value=64), st.data())
def test_shift_matches_paper_definition(width, data):
    """shft(v)[1] = 0 and shft(v)[i] = v[i-1] (§2)."""
    value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    shifted = bv.shift(value, width)
    assert bv.read_bit(shifted, 1) == 0
    for i in range(2, width + 1):
        assert bv.read_bit(shifted, i) == bv.read_bit(value, i - 1)


@given(st.integers(min_value=1, max_value=64), st.data())
def test_shift_distributes_over_or(width, data):
    v1 = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    v2 = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    assert bv.shift(v1 | v2, width) == bv.shift(v1, width) | bv.shift(v2, width)
