"""Glushkov construction tests (§2, Example 2.1)."""

import pytest

from repro.automata.glushkov import glushkov
from repro.regex import ast
from repro.regex.charclass import CharClass
from repro.regex.parser import parse
from repro.regex.rewrite import unfold_all


def sym(ch):
    return ast.symbol(CharClass.from_char(ord(ch)))


class TestConstruction:
    def test_one_state_per_position(self):
        nfa = glushkov(parse("ab(c|d)e*"))
        assert nfa.num_states == 5

    def test_example_2_1_shape(self):
        """sigma* s1 (s2 s3 | s4)* s5: six positions (including sigma*),
        one final state — the paper's Example 2.1 topology."""
        nfa = glushkov(parse(".*a(bc|d)*e"))
        assert nfa.num_states == 6
        assert len(nfa.final) == 1
        # Homogeneity: every state keeps a single predicate; edges carry none.
        (final_state,) = nfa.final
        assert ord("e") in nfa.classes[final_state]

    def test_initial_is_first_set(self):
        nfa = glushkov(parse("a|bc"))
        assert nfa.initial == {0, 1}

    def test_final_is_last_set(self):
        nfa = glushkov(parse("a(b|c)"))
        assert nfa.final == {1, 2}

    def test_star_loops_back(self):
        nfa = glushkov(parse("(ab)*"))
        assert 0 in nfa.transitions[1]  # b -> a

    def test_nullable_flag(self):
        assert glushkov(parse("a*")).match_empty
        assert not glushkov(parse("a")).match_empty

    def test_rejects_repeat_nodes(self):
        with pytest.raises(ValueError):
            glushkov(parse("a{5}"))

    def test_unfolded_repeat_size(self):
        nfa = glushkov(unfold_all(parse("a{100}")))
        assert nfa.num_states == 100


class TestMatching:
    def test_simple_literal(self):
        nfa = glushkov(parse("abc"))
        assert nfa.match_ends(b"zabcabc") == [3, 6]

    def test_start_anywhere(self):
        nfa = glushkov(parse("aa"))
        assert nfa.match_ends(b"aaaa") == [1, 2, 3]

    def test_alternation(self):
        nfa = glushkov(parse("ab|ba"))
        assert nfa.match_ends(b"aba") == [1, 2]

    def test_dot_matches_everything(self):
        nfa = glushkov(parse("a.c"))
        assert nfa.match_ends(b"a\x00c axc") == [2, 6]

    def test_unfolded_bounded_repetition(self):
        nfa = glushkov(unfold_all(parse("ab{2,4}c")))
        assert nfa.match_ends(b"abbc abbbbc abc abbbbbc") == [3, 10]


class TestStructure:
    def test_transitions_validated(self):
        from repro.automata.nfa import NFA

        with pytest.raises(ValueError):
            NFA(
                classes=[CharClass.any()],
                transitions=[[2]],
                initial={0},
                final={0},
            )

    def test_predecessors_inverse_of_successors(self):
        nfa = glushkov(parse("(ab|cd)*e"))
        preds = nfa.predecessors()
        for src, dsts in enumerate(nfa.transitions):
            for dst in dsts:
                assert src in preds[dst]

    def test_num_transitions(self):
        nfa = glushkov(parse("ab"))
        assert nfa.num_transitions() == 1

    def test_active_count_tracks_states(self):
        nfa = glushkov(parse("a*"))
        matcher = nfa.matcher()
        matcher.step(ord("a"))
        assert matcher.active_count() == 1
        assert matcher.active_states() == {0}
