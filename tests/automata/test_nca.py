"""NCA simulation tests: set-of-counter-values semantics (§2, Fig. 1)."""

import pytest

from repro.automata.actions import (
    COPY,
    SET1,
    SHIFT,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
)
from repro.automata.nca import (
    NCAMatcher,
    apply_action_to_set,
    final_condition_holds,
)
from repro.compiler.translate import translate
from repro.regex.parser import parse
from repro.regex.rewrite import RewriteParams, rewrite

P = RewriteParams(bv_size=8, unfold_threshold=2)


def build(pattern):
    return translate(rewrite(parse(pattern), P), P)


class TestActionSetSemantics:
    def test_copy(self):
        assert apply_action_to_set(COPY, {1, 3}, 5, 5) == {1, 3}

    def test_shift_increments_and_kills_at_bound(self):
        assert apply_action_to_set(SHIFT, {1, 3}, 3, 3) == {2}

    def test_set1(self):
        assert apply_action_to_set(SET1, {4, 5}, 5, 5) == {1}
        assert apply_action_to_set(SET1, set(), 5, 5) == set()

    def test_read_bit_guard(self):
        assert apply_action_to_set(ReadBit(3), {3}, 5, 1) == {1}
        assert apply_action_to_set(ReadBit(3), {2}, 5, 1) == set()

    def test_read_range_guard(self):
        assert apply_action_to_set(ReadRange(3), {2, 9}, 9, 1) == {1}
        assert apply_action_to_set(ReadRange(3), {4}, 9, 1) == set()

    def test_read_set1_combos(self):
        assert apply_action_to_set(ReadBitSet1(2), {2}, 4, 4) == {1}
        assert apply_action_to_set(ReadRangeSet1(2), {5}, 8, 8) == set()

    def test_empty_input_always_empty(self):
        for action in (COPY, SHIFT, SET1, ReadBit(1), ReadRange(1)):
            assert apply_action_to_set(action, set(), 4, 4 if not action.reads_source else 1) == set()


class TestFinalConditions:
    def test_exact(self):
        assert final_condition_holds(ReadBit(3), {1, 3})
        assert not final_condition_holds(ReadBit(3), {1, 2})

    def test_range(self):
        assert final_condition_holds(ReadRange(4), {2})
        assert not final_condition_holds(ReadRange(4), {6})

    def test_unsupported_condition_rejected(self):
        with pytest.raises(TypeError):
            final_condition_holds(COPY, {1})


class TestFig1:
    def test_counter_value_sets(self):
        """Fig. 1: the NCA holds several counter values at q2."""
        nbva = build("a.{3}")
        matcher = NCAMatcher(nbva)
        counting = next(q for q, s in enumerate(nbva.states) if s.is_counting())
        stream = "babaabaaa"
        expected_sets = [
            set(),
            set(),
            {1},
            {2},
            {1, 3},
            {1, 2},
            {2, 3},
            {1, 3},
            {1, 2},
        ]
        outputs = [0, 0, 0, 0, 1, 0, 1, 1, 0]
        for symbol, values, out in zip(stream, expected_sets, outputs):
            matched = matcher.step(ord(symbol))
            assert matcher.values[counting] == values, symbol
            assert int(matched) == out

    def test_configuration_listing(self):
        nbva = build("a.{3}")
        matcher = NCAMatcher(nbva)
        for symbol in b"ab":
            matcher.step(symbol)
        config = matcher.configuration()
        assert any(values == frozenset({1}) for _, values in config)


class TestEquivalenceWithNBVA:
    @pytest.mark.parametrize(
        "pattern,data",
        [
            ("ab{4}c", b"aababbbbc" * 3),
            ("a.{3}", b"babaaabaaaa"),
            ("(ab){3}c", b"abababc" + b"ababc"),
            ("a{2,6}b", b"aaab aaaaaaab ab"),
        ],
    )
    def test_same_matches(self, pattern, data):
        nbva = build(pattern)
        assert NCAMatcher(nbva).match_ends(data) == nbva.match_ends(data)
