"""NBVA model and simulation tests, including the paper's Fig. 1 trace."""

import pytest

from repro.automata.actions import ReadBit, ReadRange
from repro.automata.nbva import NBVA, Scope, State, Transition
from repro.compiler.translate import translate
from repro.regex.parser import parse
from repro.regex.rewrite import RewriteParams, rewrite

P = RewriteParams(bv_size=8, unfold_threshold=2)


def build(pattern: str) -> NBVA:
    return translate(rewrite(parse(pattern), P), P)


class TestFig1Trace:
    """Execution of the NBVA for sigma* a sigma{3} (paper Fig. 1)."""

    INPUT = b"baabaaabaaaa"[:0]  # placeholder, see test body

    def test_vector_sequence(self):
        nbva = build("a.{3}")
        matcher = nbva.matcher()
        # Fig. 1 input: b a b a a b a a a  (prefix of the table's stream)
        expected = [
            ("b", [0, 0, 0], 0),
            ("a", [0, 0, 0], 0),
            ("b", [1, 0, 0], 0),
            ("a", [0, 1, 0], 0),
            ("a", [1, 0, 1], 1),
            ("b", [1, 1, 0], 0),
            ("a", [0, 1, 1], 1),
            ("a", [1, 0, 1], 1),
            ("a", [1, 1, 0], 0),
        ]
        # state index of the counting state:
        counting = next(
            q for q, s in enumerate(nbva.states) if s.is_counting()
        )
        for symbol, bits, out in expected:
            matched = matcher.step(ord(symbol))
            value = matcher.vectors[counting]
            got_bits = [(value >> i) & 1 for i in range(3)]
            assert got_bits == bits, (symbol, got_bits, bits)
            assert int(matched) == out

    def test_match_ends(self):
        nbva = build("a.{3}")
        # 'a' then any three symbols.
        assert nbva.match_ends(b"abbbz") == [3]
        assert nbva.match_ends(b"aaaaa") == [3, 4]


class TestStructure:
    def test_counting_state_count(self):
        nbva = build("ab{8}c")
        assert nbva.num_counting_states() == 1
        assert nbva.total_bv_bits() == 8

    def test_scope_width(self):
        assert Scope(low=2, high=7).width == 7

    def test_scope_validation(self):
        with pytest.raises(ValueError):
            Scope(low=5, high=3)

    def test_transition_validation(self):
        from repro.automata.actions import COPY
        from repro.regex.charclass import CharClass

        with pytest.raises(ValueError):
            NBVA(
                states=[State(cc=CharClass.any())],
                transitions=[Transition(0, 3, COPY)],
            )

    def test_incoming_outgoing(self):
        nbva = build("ab{8}c")
        incoming = nbva.incoming()
        outgoing = nbva.outgoing()
        assert sum(len(x) for x in incoming) == sum(len(x) for x in outgoing)
        for t in nbva.transitions:
            assert t in incoming[t.dst]
            assert t in outgoing[t.src]

    def test_initial_reinjected_every_symbol(self):
        nbva = build("ab")
        assert nbva.match_ends(b"abab") == [1, 3]

    def test_final_conditions_are_reads(self):
        nbva = build("ab{8}")
        for condition in nbva.final.values():
            assert isinstance(condition, (ReadBit, ReadRange))

    def test_match_empty_flag(self):
        assert build("a*").match_empty
        assert not build("ab{3}").match_empty


class TestSemantics:
    def test_overlapping_counts(self):
        """Two overlapping runs tracked by one bit vector (the NCA needs
        two counter values here — the paper's motivating case)."""
        nbva = build("ab{4}c")
        #        a b a b b b b c  -> outer 'a' at 0 needs 4 b's: no.
        data = b"aababbbbc"
        # match: a at index 4-4? 'a' at 1: bbbb? positions 1 a,2 b,3 a...
        # Use the ground-truth oracle instead of hand counting:
        from repro.matching.oracle import match_ends

        assert nbva.match_ends(data) == match_ends(parse("ab{4}c"), data)

    def test_active_states_listing(self):
        nbva = build("ab{8}c")
        matcher = nbva.matcher()
        matcher.step(ord("a"))
        assert matcher.active_states() != []

    def test_is_action_homogeneous_detects_violations(self):
        nbva = build("a(.a){3}b".replace("{3}", "{5}"))
        # The sigma state has set1 and shift incoming: not homogeneous.
        assert not nbva.is_action_homogeneous()

    def test_plain_regex_is_homogeneous_already(self):
        nbva = build("abc")
        assert nbva.is_action_homogeneous()
