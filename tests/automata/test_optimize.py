"""Dead-state elimination tests."""

import random

import pytest

from repro.automata.actions import COPY, ReadBit
from repro.automata.ah import AHNBVA, AHState
from repro.automata.optimize import prune, pruning_summary
from repro.compiler import compile_pattern
from repro.regex.charclass import CharClass
from repro.regex.generate import random_regex
from repro.regex.parser import parse
from repro.regex.rewrite import RewriteParams, rewrite
from repro.compiler.translate import translate
from repro.automata.ah import to_action_homogeneous

P = RewriteParams(bv_size=8, unfold_threshold=2)


def build(pattern):
    return to_action_homogeneous(translate(rewrite(parse(pattern), P), P))


class TestNoOpCases:
    def test_clean_automaton_unchanged(self):
        ah = build("ab{8}c")
        assert prune(ah) is ah  # same object: nothing to remove

    def test_summary(self):
        ah = build("abc")
        summary = pruning_summary(ah, prune(ah))
        assert summary["states_before"] == summary["states_after"]


class TestPruning:
    def _with_dead_state(self):
        ah = build("ab")
        # Append an unreachable state (no preds, no injection).
        ah.states.append(
            AHState(cc=CharClass.from_char(ord("z")), action=COPY, width=1)
        )
        ah.preds.append([])
        return ah

    def test_unreachable_removed(self):
        ah = self._with_dead_state()
        pruned = prune(ah)
        assert pruned.num_states == ah.num_states - 1

    def test_unsatisfiable_predicate_removed(self):
        ah = build("ab")
        ah.states.append(
            AHState(cc=CharClass.empty(), action=COPY, width=1)
        )
        ah.preds.append([0])  # reachable, but can never match
        pruned = prune(ah)
        assert all(not s.cc.is_empty() for s in pruned.states)

    def test_useless_state_removed(self):
        ah = build("ab")
        # Reachable state that reaches no reporting state.
        ah.states.append(
            AHState(cc=CharClass.from_char(ord("z")), action=COPY, width=1)
        )
        ah.preds.append([0])
        pruned = prune(ah)
        assert pruned.num_states == ah.num_states - 1

    def test_language_preserved(self):
        ah = self._with_dead_state()
        pruned = prune(ah)
        rng = random.Random(0)
        for _ in range(10):
            data = bytes(rng.choice(b"abz") for _ in range(30))
            assert pruned.match_ends(data) == ah.match_ends(data)

    def test_injection_and_final_remapped(self):
        ah = self._with_dead_state()
        pruned = prune(ah)
        assert pruned.injected  # still has its start state
        assert pruned.final
        assert pruned.match_ends(b"ab") == [1]


class TestRandomised:
    def test_prune_is_idempotent_and_safe(self):
        rng = random.Random(1)
        for _ in range(15):
            node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=6)
            ah = to_action_homogeneous(translate(rewrite(node, P), P))
            pruned = prune(ah)
            assert prune(pruned) is pruned
            data = bytes(rng.choice(b"ab") for _ in range(40))
            assert pruned.match_ends(data) == ah.match_ends(data)
