"""Action-homogeneous transformation tests (§4, Fig. 2(f)/(g))."""

import random

import pytest

from repro.automata.actions import Copy, ReadBit, Set1, Shift
from repro.automata.ah import incoming_action_kinds, to_action_homogeneous
from repro.compiler.translate import translate
from repro.regex.generate import random_regex
from repro.regex.parser import parse
from repro.regex.rewrite import RewriteParams, rewrite

P = RewriteParams(bv_size=8, unfold_threshold=2)


def build(pattern, params=P):
    return translate(rewrite(parse(pattern), params), params)


class TestPaperExample:
    """a(sigma a){3}b — the running example of §3/§4."""

    def setup_method(self):
        self.nbva = build("a(.a){3}b")
        self.ah = to_action_homogeneous(self.nbva)

    def test_splits_sigma_state(self):
        """The sigma state has set1 and shift incoming -> STE2a/STE2b."""
        assert self.nbva.num_states == 4
        assert self.ah.num_states == 5

    def test_action_profile_matches_fig_2g(self):
        actions = sorted(type(s.action).__name__ for s in self.ah.states)
        assert actions == ["Copy", "Copy", "ReadBit", "Set1", "Shift"]
        reads = [s for s in self.ah.states if isinstance(s.action, ReadBit)]
        assert reads[0].action.position == 3

    def test_bv_ste_count_matches_fig_3c(self):
        """STEs 2a, 2b, 3, 4 are BV-STEs; STE1 is plain."""
        assert self.ah.num_bv_stes() == 4
        assert self.ah.num_plain_stes() == 1

    def test_split_copies_share_outgoing(self):
        """STE2a and STE2b both feed STE3 (copies inherit outgoing)."""
        copy_state = next(
            q
            for q, s in enumerate(self.ah.states)
            if isinstance(s.action, Copy) and s.width > 1
        )
        preds = self.ah.preds[copy_state]
        kinds = {type(self.ah.states[p].action).__name__ for p in preds}
        assert kinds == {"Set1", "Shift"}

    def test_language_preserved(self):
        data = b"abaaabab"
        assert self.ah.match_ends(data) == self.nbva.match_ends(data) == [7]


class TestProperty:
    def test_output_is_action_homogeneous(self):
        rng = random.Random(0)
        for _ in range(25):
            node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=9)
            params = RewriteParams(bv_size=8, unfold_threshold=2)
            nbva = translate(rewrite(node, params), params)
            ah = to_action_homogeneous(nbva)
            # every state's action equals all its incoming "kinds"
            for q, state in enumerate(ah.states):
                for p in ah.preds[q]:
                    # incoming action is the state's own label by design
                    assert ah.states[q].action == state.action

    def test_language_preserved_random(self):
        rng = random.Random(1)
        for _ in range(20):
            node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=9)
            nbva = translate(rewrite(node, P), P)
            ah = to_action_homogeneous(nbva)
            data = bytes(rng.choice(b"ab") for _ in range(40))
            assert ah.match_ends(data) == nbva.match_ends(data)

    def test_state_blowup_is_bounded(self):
        """AH adds at most a small constant factor (#distinct actions)."""
        rng = random.Random(2)
        for _ in range(20):
            node = random_regex(rng, alphabet=b"abc", depth=3, max_bound=9)
            nbva = translate(rewrite(node, P), P)
            ah = to_action_homogeneous(nbva)
            assert ah.num_states <= 4 * max(1, nbva.num_states)


class TestMechanics:
    def test_incoming_action_kinds_counts_injection(self):
        nbva = build("a{5}")
        # the counting state has a shift self-loop and the injection (set1)
        counting = next(q for q, s in enumerate(nbva.states) if s.is_counting())
        kinds = incoming_action_kinds(nbva, counting)
        assert {type(k).__name__ for k in kinds} == {"Shift", "Set1"}

    def test_injection_assigned_to_set1_copy(self):
        ah = to_action_homogeneous(build("a{5}"))
        for q in ah.injected:
            assert isinstance(ah.states[q].action, (Set1, Copy))

    def test_final_inherited_by_all_copies(self):
        nbva = build("a{5}")
        ah = to_action_homogeneous(nbva)
        # both the set1 copy and the shift copy report via r(5)
        finals = {q for q in ah.final}
        origins = {ah.states[q].origin for q in finals}
        assert len(finals) == 2 and len(origins) == 1

    def test_unreachable_state_kept_inert(self):
        """States without incoming edges or injection stay in the AH
        automaton but never activate."""
        nbva = build("ab")
        ah = to_action_homogeneous(nbva)
        assert ah.num_states == nbva.num_states

    def test_in_width_tracks_predecessors(self):
        ah = to_action_homogeneous(build("ab{8}c"))
        for q, state in enumerate(ah.states):
            if ah.preds[q]:
                assert state.in_width == max(
                    ah.states[p].width for p in ah.preds[q]
                )

    def test_scopes_carried_over(self):
        nbva = build("ab{8}c")
        ah = to_action_homogeneous(nbva)
        assert ah.scopes == nbva.scopes
