"""Action semantics and the linearity property (§3).

Linearity — f(v1 | v2) == f(v1) | f(v2) — is what makes the BVAP order
(aggregate, then act) equivalent to the naïve order (act, then aggregate);
every action must satisfy it.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.automata.actions import (
    COPY,
    SET1,
    SHIFT,
    Copy,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
    Set1,
    Shift,
    read_action,
    read_set1_action,
)

WIDTH = 8
ALL_ACTIONS = [
    (COPY, WIDTH, WIDTH),
    (SHIFT, WIDTH, WIDTH),
    (SET1, WIDTH, WIDTH),
    (SET1, WIDTH, 1),
    (ReadBit(3), WIDTH, 1),
    (ReadRange(4), WIDTH, 1),
    (ReadBitSet1(3), WIDTH, WIDTH),
    (ReadRangeSet1(4), WIDTH, WIDTH),
]


class TestSemantics:
    def test_copy_identity(self):
        assert COPY.apply(0b1011, 4, 4) == 0b1011

    def test_copy_rejects_width_change(self):
        with pytest.raises(ValueError):
            COPY.apply(1, 4, 5)

    def test_shift(self):
        assert SHIFT.apply(0b0101, 4, 4) == 0b1010
        assert SHIFT.apply(0b1000, 4, 4) == 0

    def test_set1_only_when_active(self):
        assert SET1.apply(0, 4, 4) == 0
        assert SET1.apply(0b100, 4, 4) == 1

    def test_read_bit(self):
        assert ReadBit(3).apply(0b100, 4, 1) == 1
        assert ReadBit(2).apply(0b100, 4, 1) == 0

    def test_read_bit_bounds(self):
        with pytest.raises(ValueError):
            ReadBit(5).apply(1, 4, 1)
        with pytest.raises(ValueError):
            ReadBit(0)

    def test_read_requires_width_one_output(self):
        with pytest.raises(ValueError):
            ReadBit(1).apply(1, 4, 4)

    def test_read_range(self):
        assert ReadRange(2).apply(0b100, 4, 1) == 0
        assert ReadRange(3).apply(0b100, 4, 1) == 1

    def test_read_set1_combos(self):
        assert ReadBitSet1(3).apply(0b100, 4, 6) == 1
        assert ReadBitSet1(3).apply(0b010, 4, 6) == 0
        assert ReadRangeSet1(2).apply(0b010, 4, 6) == 1
        assert ReadRangeSet1(2).apply(0b100, 4, 6) == 0


class TestFactories:
    def test_read_action_exact_vs_range(self):
        assert read_action(5, 5) == ReadBit(5)
        assert read_action(1, 8) == ReadRange(8)
        assert read_action(0, 8) == ReadRange(8)

    def test_read_set1_action(self):
        assert read_set1_action(5, 5) == ReadBitSet1(5)
        assert read_set1_action(1, 8) == ReadRangeSet1(8)


class TestIdentity:
    def test_equality_by_type_and_params(self):
        assert ReadBit(3) == ReadBit(3)
        assert ReadBit(3) != ReadBit(4)
        assert ReadBit(3) != ReadBitSet1(3)
        assert Copy() == COPY
        assert COPY != SHIFT

    def test_hashable(self):
        assert len({ReadBit(3), ReadBit(3), ReadRange(3)}) == 2

    def test_immutable(self):
        with pytest.raises(AttributeError):
            ReadBit(3).position = 4

    def test_mnemonics(self):
        assert COPY.mnemonic == "copy"
        assert ReadBit(7).mnemonic == "r(7)"
        assert ReadRange(8).mnemonic == "r(1,8)"
        assert ReadBitSet1(7).mnemonic == "r(7).set1"

    def test_reads_source_flag(self):
        assert not COPY.reads_source and not SHIFT.reads_source
        assert not SET1.reads_source
        assert ReadBit(1).reads_source and ReadRangeSet1(2).reads_source


@pytest.mark.parametrize("action,in_w,out_w", ALL_ACTIONS)
@given(data=st.data())
def test_linearity(action, in_w, out_w, data):
    """f(v1 | v2) == f(v1) | f(v2) for every action (§3)."""
    v1 = data.draw(st.integers(min_value=0, max_value=(1 << in_w) - 1))
    v2 = data.draw(st.integers(min_value=0, max_value=(1 << in_w) - 1))
    assert action.apply(v1 | v2, in_w, out_w) == (
        action.apply(v1, in_w, out_w) | action.apply(v2, in_w, out_w)
    )


@pytest.mark.parametrize("action,in_w,out_w", ALL_ACTIONS)
def test_strictness(action, in_w, out_w):
    """f(0) == 0: an inactive source contributes nothing."""
    assert action.apply(0, in_w, out_w) == 0
