"""Rule-set characterisation tests."""

import pytest

from repro.analysis.characterize import characterize


class TestCounts:
    def test_plain_ruleset(self):
        stats = characterize(["abc", "de|f"])
        assert stats.counting_fraction == 0.0
        assert stats.counting_state_fraction == 0.0
        assert stats.total_unfolded_states == 6

    def test_counting_detected(self):
        stats = characterize(["ab{10}c", "plain"])
        assert stats.counting_patterns == 1
        assert stats.counting_fraction == 0.5

    def test_state_attribution(self):
        stats = characterize(["ab{10}c"])
        # unfolded: 12 states; plain footprint: a b c = 3
        assert stats.total_unfolded_states == 12
        assert stats.counting_unfolded_states == 9
        assert stats.counting_state_fraction == pytest.approx(9 / 12)

    def test_parse_failures_counted(self):
        stats = characterize(["(((", "ok"])
        assert stats.parse_failures == 1
        assert stats.counting_fraction == 0.0

    def test_mean_plain_states(self):
        stats = characterize(["abcd", "ab"])
        assert stats.mean_plain_states == 3.0

    def test_empty_collection(self):
        stats = characterize([])
        assert stats.counting_fraction == 0.0
        assert stats.mean_plain_states == 0.0


class TestHistogram:
    def test_buckets(self):
        stats = characterize(["a{3}b{30}c{300}d{3000}"])
        assert stats.bound_histogram["2-4"] == 1
        assert stats.bound_histogram["17-64"] == 1
        assert stats.bound_histogram["257-1024"] == 1
        assert stats.bound_histogram[">1024"] == 1

    def test_unbounded_uses_low(self):
        stats = characterize(["a{40,}"])
        assert stats.bound_histogram["17-64"] == 1

    def test_trivial_bounds_ignored(self):
        stats = characterize(["a{0,1}b"])  # collapses to optional
        assert all(count == 0 for count in stats.bound_histogram.values())
