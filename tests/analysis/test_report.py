"""ASCII table rendering and telemetry-join tests."""

from repro.analysis.report import (
    format_table,
    join_report_metrics,
    metrics_summary_table,
    normalized_table,
    span_summary_table,
)
from repro.hardware.report import SimulationReport


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12345.6], [0.0000001]])
        assert "0.123" in text
        assert "1.23e+04" in text or "12345" in text.replace(",", "")

    def test_zero(self):
        assert "0" in format_table(["x"], [[0.0]])


class TestNormalizedTable:
    def test_shape(self):
        per_arch = {
            "BVAP": {"area": 0.5, "fom": 0.2},
            "CAMA": {"area": 1.0, "fom": 1.0},
        }
        text = normalized_table(per_arch, ["area", "fom"])
        assert "BVAP" in text and "CAMA" in text
        assert "architecture" in text


SNAPSHOT = {
    "counters": {"sim.symbols": 100, "sim.tile.bvm_activations{tile=0}": 7},
    "gauges": {"sim.progress_symbols": {"value": 100, "max": 100}},
    "histograms": {
        "sim.active_states": {
            "bounds": [0, 1], "counts": [10, 40, 50],
            "count": 100, "sum": 240.0, "mean": 2.4, "min": 0, "max": 9,
        }
    },
    "spans": {
        "compile.parse": {"count": 2, "total_us": 10.0, "max_us": 7.0},
        "sim.run": {"count": 1, "total_us": 90.0, "max_us": 90.0},
    },
}


class TestSpanSummaryTable:
    def test_sorted_by_total_time(self):
        text = span_summary_table(SNAPSHOT)
        lines = text.splitlines()
        assert "span" in lines[0]
        assert lines[2].split()[0] == "sim.run"  # biggest total first
        assert "compile.parse" in text

    def test_empty_snapshot(self):
        assert "span" in span_summary_table({})


class TestMetricsSummaryTable:
    def test_lists_all_kinds(self):
        text = metrics_summary_table(SNAPSHOT)
        assert "sim.symbols" in text
        assert "sim.progress_symbols" in text
        assert "sim.active_states" in text
        assert "counter" in text and "gauge" in text and "histogram" in text


class TestJoinReportMetrics:
    def make_report(self, notes):
        return SimulationReport(
            architecture="BVAP",
            symbols=100,
            system_cycles=120,
            clock_hz=1e9,
            dynamic_energy_j=1e-9,
            leakage_energy_j=0.0,
            area_mm2=1.0,
            matches=3,
            stall_cycles=20,
            bvm_activations=7,
            notes=notes,
        )

    def test_join_flattens_report_and_telemetry(self):
        joined = join_report_metrics(self.make_report({"metrics": SNAPSHOT}))
        # paper-figure side
        assert joined["architecture"] == "BVAP"
        assert joined["stall_cycles"] == 20
        assert joined["energy_per_symbol_nj"] > 0
        # telemetry side
        assert joined["telemetry.sim.tile.bvm_activations{tile=0}"] == 7
        assert joined["telemetry.sim.progress_symbols"] == 100
        assert joined["telemetry.sim.active_states.mean"] == 2.4
        assert joined["telemetry.span.sim.run.total_us"] == 90.0

    def test_join_without_snapshot(self):
        joined = join_report_metrics(self.make_report({}))
        assert joined["matches"] == 3
        assert not any(k.startswith("telemetry.") for k in joined)
