"""ASCII table rendering tests."""

from repro.analysis.report import format_table, normalized_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456], [12345.6], [0.0000001]])
        assert "0.123" in text
        assert "1.23e+04" in text or "12345" in text.replace(",", "")

    def test_zero(self):
        assert "0" in format_table(["x"], [[0.0]])


class TestNormalizedTable:
    def test_shape(self):
        per_arch = {
            "BVAP": {"area": 0.5, "fom": 0.2},
            "CAMA": {"area": 1.0, "fom": 1.0},
        }
        text = normalized_table(per_arch, ["area", "fom"])
        assert "BVAP" in text and "CAMA" in text
        assert "architecture" in text
