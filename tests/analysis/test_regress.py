"""Regression comparator tests: ratio math, noise robustness, CLI gate.

The property that matters for CI: one noisy cell cannot flip the
verdict (median, not mean), a grid reshape cannot fail the gate
(unmatched cells are counted, not judged), and a missing engine gets a
note instead of a failure.
"""

import json

import pytest

from repro.analysis.regress import (
    DEFAULT_THRESHOLD,
    compare_records,
    format_regression,
    main,
)


def _record(throughputs, engines=("nfa", "fused")):
    """Build a minimal bench_grid-shaped record.

    ``throughputs`` maps (num_patterns, input_bytes) -> {engine: mbps}.
    """
    grid = []
    for (num_patterns, input_bytes), per_engine in sorted(
        throughputs.items()
    ):
        grid.append(
            {
                "num_patterns": num_patterns,
                "input_bytes": input_bytes,
                "timings": {
                    engine: {"throughput_mbps": mbps}
                    for engine, mbps in per_engine.items()
                },
            }
        )
    return {"engines": list(engines), "grid": grid}


def _rate_record(throughputs, engines=("nfa", "fused"), rate_throughputs=None):
    """A record with both a classic grid and a ``match_rate_grid``.

    ``rate_throughputs`` maps (num_patterns, input_bytes, match_rate)
    -> {variant: mbps} (the fused tier pseudo-engines).
    """
    record = _record(throughputs, engines)
    record["match_rate_grid"] = [
        {
            "num_patterns": num_patterns,
            "input_bytes": input_bytes,
            "match_rate": match_rate,
            "timings": {
                variant: {"throughput_mbps": mbps}
                for variant, mbps in per_variant.items()
            },
        }
        for (num_patterns, input_bytes, match_rate), per_variant in sorted(
            (rate_throughputs or {}).items()
        )
    ]
    return record


BASELINE = _record(
    {
        (4, 4096): {"nfa": 10.0, "fused": 100.0},
        (16, 4096): {"nfa": 5.0, "fused": 80.0},
        (16, 16384): {"nfa": 5.0, "fused": 90.0},
    }
)


class TestCompareRecords:
    def test_identical_records_pass(self):
        report = compare_records(BASELINE, BASELINE)
        assert report.ok
        assert report.matched_cells == 3
        assert {e.engine for e in report.engines} == {"nfa", "fused"}
        for engine in report.engines:
            assert engine.median_ratio == pytest.approx(1.0)
            assert not engine.regressed

    def test_uniform_slowdown_fails(self):
        slower = _record(
            {
                (4, 4096): {"nfa": 10.0, "fused": 50.0},
                (16, 4096): {"nfa": 5.0, "fused": 40.0},
                (16, 16384): {"nfa": 5.0, "fused": 45.0},
            }
        )
        report = compare_records(BASELINE, slower)
        assert not report.ok
        assert [e.engine for e in report.regressions] == ["fused"]
        fused = next(e for e in report.engines if e.engine == "fused")
        assert fused.median_ratio == pytest.approx(0.5)

    def test_one_noisy_cell_cannot_fail_the_gate(self):
        """Median verdict: a single 10x-slower cell stays ok while the
        other cells hold steady."""
        noisy = _record(
            {
                (4, 4096): {"nfa": 10.0, "fused": 10.0},  # 0.1x outlier
                (16, 4096): {"nfa": 5.0, "fused": 80.0},
                (16, 16384): {"nfa": 5.0, "fused": 90.0},
            }
        )
        report = compare_records(BASELINE, noisy)
        assert report.ok
        fused = next(e for e in report.engines if e.engine == "fused")
        assert fused.median_ratio == pytest.approx(1.0)
        assert fused.min_ratio == pytest.approx(0.1)

    def test_cells_match_by_shape_not_position(self):
        reordered = {
            "engines": ["nfa", "fused"],
            "grid": list(reversed(BASELINE["grid"])),
        }
        report = compare_records(BASELINE, reordered)
        assert report.ok
        assert report.matched_cells == 3

    def test_unmatched_cells_counted_not_judged(self):
        extended = _record(
            {
                (4, 4096): {"nfa": 10.0, "fused": 100.0},
                (64, 65536): {"nfa": 1.0, "fused": 1.0},  # new shape
            }
        )
        report = compare_records(BASELINE, extended)
        assert report.matched_cells == 1
        assert report.unmatched_old == 2
        assert report.unmatched_new == 1
        assert report.ok

    def test_no_common_cells_is_a_note_not_a_failure(self):
        other = _record({(99, 99): {"nfa": 1.0, "fused": 1.0}})
        report = compare_records(BASELINE, other)
        assert report.ok
        assert report.engines == []
        assert any("nothing compared" in note for note in report.notes)

    def test_engine_missing_from_new_record_gets_note(self):
        report = compare_records(BASELINE, BASELINE, engines=["baseline"])
        assert report.ok
        assert any("baseline" in note for note in report.notes)

    def test_default_engines_is_intersection(self):
        new = _record(
            {(4, 4096): {"fused": 100.0}}, engines=("fused",)
        )
        report = compare_records(BASELINE, new)
        assert [e.engine for e in report.engines] == ["fused"]

    def test_zero_and_missing_throughput_skipped(self):
        degenerate = _record(
            {
                (4, 4096): {"nfa": 0.0, "fused": 100.0},
                (16, 4096): {"fused": 80.0},
                (16, 16384): {"nfa": 5.0, "fused": 90.0},
            }
        )
        report = compare_records(BASELINE, degenerate)
        nfa = next(e for e in report.engines if e.engine == "nfa")
        assert nfa.cells == 1

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            compare_records(BASELINE, BASELINE, threshold=0.0)
        with pytest.raises(ValueError):
            compare_records(BASELINE, BASELINE, threshold=1.0)

    def test_threshold_boundary(self):
        """A drop exactly at the threshold passes; just past it fails."""
        at_boundary = _record(
            {
                key: {e: t * (1.0 - DEFAULT_THRESHOLD) for e, t in v.items()}
                for key, v in {
                    (4, 4096): {"nfa": 10.0, "fused": 100.0},
                    (16, 4096): {"nfa": 5.0, "fused": 80.0},
                    (16, 16384): {"nfa": 5.0, "fused": 90.0},
                }.items()
            }
        )
        assert compare_records(BASELINE, at_boundary).ok
        report = compare_records(
            BASELINE, at_boundary, threshold=DEFAULT_THRESHOLD - 0.01
        )
        assert not report.ok

    def test_match_rate_cells_join_the_comparison_pool(self):
        """match_rate_grid cells compare by (np, ib, rate) shape and the
        fused tier variants are auto-collected as pseudo-engines."""
        rates = {
            (16, 65536, 0.0): {"fused-bitset": 10.0, "fused-table": 40.0},
            (16, 65536, 0.5): {"fused-bitset": 8.0, "fused-table": 12.0},
        }
        record = _rate_record(
            {(4, 4096): {"nfa": 10.0, "fused": 100.0}},
            rate_throughputs=rates,
        )
        report = compare_records(record, record)
        assert report.ok
        assert report.matched_cells == 3
        table = next(
            e for e in report.engines if e.engine == "fused-table"
        )
        assert table.cells == 2
        assert table.median_ratio == pytest.approx(1.0)

    def test_match_rate_regression_detected(self):
        rates = {
            (16, 65536, 0.0): {"fused-bitset": 10.0, "fused-table": 40.0},
        }
        old = _rate_record({}, rate_throughputs=rates)
        slower = _rate_record(
            {},
            rate_throughputs={
                (16, 65536, 0.0): {"fused-bitset": 10.0, "fused-table": 10.0}
            },
        )
        report = compare_records(old, slower)
        assert not report.ok
        assert [e.engine for e in report.regressions] == ["fused-table"]

    def test_mixed_shapes_with_shared_prefix_sort(self):
        """A classic grid cell and a match-rate cell sharing
        (num_patterns, input_bytes) must coexist — the None rate sorts
        before any float instead of raising."""
        record = _rate_record(
            {(16, 4096): {"fused": 80.0}},
            rate_throughputs={(16, 4096, 0.0): {"fused-table": 40.0}},
        )
        report = compare_records(record, record)
        assert report.ok
        assert report.matched_cells == 2

    def test_legacy_record_still_compares(self):
        """A baseline without a match-rate axis vs a record with one:
        the classic cells compare, the new cells are counted unmatched."""
        extended = _rate_record(
            {
                (4, 4096): {"nfa": 10.0, "fused": 100.0},
                (16, 4096): {"nfa": 5.0, "fused": 80.0},
                (16, 16384): {"nfa": 5.0, "fused": 90.0},
            },
            rate_throughputs={
                (16, 65536, 0.0): {"fused-bitset": 10.0, "fused-table": 40.0}
            },
        )
        report = compare_records(BASELINE, extended)
        assert report.ok
        assert report.matched_cells == 3
        assert report.unmatched_new == 1

    def test_workload_cells_compare_as_tier_pseudo_engines(self):
        record = dict(BASELINE)
        record["workloads"] = [
            {
                "workload": "ids",
                "num_patterns": 4,
                "records": 512,
                "input_bytes": 14000,
                "match_rate": 0.0,
                "timings": {
                    "fused-bitset": {"throughput_mbps": 2.0},
                    "fused-prefilter": {"throughput_mbps": 4.0},
                },
            },
            {
                "workload": "pii",
                "num_patterns": 3,
                "records": 512,
                "input_bytes": 40000,
                "match_rate": 0.0,
                "timings": {
                    "fused-bitset": {"throughput_mbps": 2.5},
                    "fused-prefilter": {"throughput_mbps": 6.0},
                },
            },
        ]
        report = compare_records(record, record)
        assert report.ok
        assert report.matched_cells == 5
        prefilter = next(
            e for e in report.engines if e.engine == "workload-fused-prefilter"
        )
        assert prefilter.cells == 2
        assert prefilter.median_ratio == pytest.approx(1.0)

    def test_workload_regression_detected_despite_record_count_drift(self):
        old = dict(BASELINE)
        old["workloads"] = [
            {
                "workload": "ids",
                "num_patterns": 4,
                "records": 512,
                "input_bytes": 14000,
                "match_rate": 0.0,
                "timings": {"fused-prefilter": {"throughput_mbps": 4.0}},
            },
        ]
        new = dict(BASELINE)
        new["workloads"] = [
            {
                "workload": "ids",
                "num_patterns": 4,
                "records": 256,  # generator drift: still the same shape
                "input_bytes": 7000,
                "match_rate": 0.0,
                "timings": {"fused-prefilter": {"throughput_mbps": 1.0}},
            },
        ]
        report = compare_records(old, new)
        assert not report.ok
        assert [e.engine for e in report.regressions] == [
            "workload-fused-prefilter"
        ]

    def test_workload_cells_in_one_record_noted_not_failed(self):
        extended = dict(BASELINE)
        extended["workloads"] = [
            {
                "workload": "ids",
                "num_patterns": 4,
                "match_rate": 0.0,
                "timings": {"fused-prefilter": {"throughput_mbps": 4.0}},
            },
        ]
        report = compare_records(BASELINE, extended)
        assert report.ok
        assert any("workload" in note for note in report.notes)

    def test_report_json_shape(self):
        report = compare_records(BASELINE, BASELINE)
        doc = report.to_json()
        assert doc["ok"] is True
        assert doc["regressed"] == []
        assert doc["threshold"] == DEFAULT_THRESHOLD
        assert all(
            set(e) >= {"engine", "cells", "median_ratio", "regressed"}
            for e in doc["engines"]
        )

    def test_format_regression_renders(self):
        table = format_regression(compare_records(BASELINE, BASELINE))
        assert "engine" in table
        assert "ok" in table
        assert "threshold" in table


class TestCLI:
    def _write(self, tmp_path, name, record):
        path = tmp_path / name
        path.write_text(json.dumps(record))
        return str(path)

    def test_exit_zero_when_ok(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        new = self._write(tmp_path, "new.json", BASELINE)
        assert main([old, new]) == 0
        assert "engine" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        slower = _record(
            {
                (4, 4096): {"nfa": 1.0, "fused": 10.0},
                (16, 4096): {"nfa": 0.5, "fused": 8.0},
                (16, 16384): {"nfa": 0.5, "fused": 9.0},
            }
        )
        old = self._write(tmp_path, "old.json", BASELINE)
        new = self._write(tmp_path, "new.json", slower)
        assert main([old, new]) == 1
        assert "regression" in capsys.readouterr().err

    def test_exit_two_on_unreadable_record(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        assert main([old, str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main([old, str(bad)]) == 2

    def test_json_mode(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        assert main([old, old, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True

    def test_engine_subset_flag(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", BASELINE)
        assert main([old, old, "--engines", "fused"]) == 0
        assert "nfa" not in capsys.readouterr().out

    def test_committed_baseline_compares_against_itself(self, capsys):
        """The committed BENCH_scan.json is a valid regress input."""
        assert main(["BENCH_scan.json", "BENCH_scan.json"]) == 0
        out = capsys.readouterr().out
        assert "matched cells" in out
