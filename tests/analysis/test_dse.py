"""Design-space exploration driver tests (kept small: 2x2 sweeps)."""

import pytest

from repro.analysis.dse import DSEResult, explore_dataset


@pytest.fixture(scope="module")
def result():
    return explore_dataset(
        "RegexLib",
        regex_count=10,
        input_length=600,
        seed=0,
        bv_sizes=(16, 64),
        unfold_thresholds=(4, 12),
    )


class TestSweep:
    def test_point_count(self, result):
        assert len(result.points) == 4

    def test_all_combinations_present(self, result):
        combos = {(p.bv_size, p.unfold_threshold) for p in result.points}
        assert combos == {(16, 4), (16, 12), (64, 4), (64, 12)}

    def test_normalisation_positive(self, result):
        for point in result.points:
            assert point.compute_density_norm > 0
            assert point.edp_norm > 0
            assert point.fom_norm > 0

    def test_shared_baseline(self, result):
        baselines = {id(p.baseline) for p in result.points}
        assert len(baselines) == 1


class TestReduceAxis:
    def test_reduce_levels_sweep_and_default(self, result):
        """The optional reduce_levels axis multiplies the grid; the
        default sweep records the standard level on every point."""
        from repro.compiler import DEFAULT_REDUCE_LEVEL

        assert {p.reduce_level for p in result.points} == {
            DEFAULT_REDUCE_LEVEL
        }
        swept = explore_dataset(
            "RegexLib",
            regex_count=4,
            input_length=200,
            seed=0,
            bv_sizes=(16,),
            unfold_thresholds=(4,),
            reduce_levels=(0, 2),
        )
        assert len(swept.points) == 2
        assert {p.reduce_level for p in swept.points} == {0, 2}


class TestSelection:
    def test_best_by_fom_is_minimum(self, result):
        best = result.best_by_fom()
        assert all(best.fom_norm <= p.fom_norm for p in result.points)

    def test_best_by_density_is_maximum(self, result):
        best = result.best_by_density()
        assert all(
            best.compute_density_norm >= p.compute_density_norm
            for p in result.points
        )

    def test_best_by_edp_is_minimum(self, result):
        best = result.best_by_edp()
        assert all(best.edp_norm <= p.edp_norm for p in result.points)

    def test_grid_lookup(self, result):
        grid = result.grid("fom")
        assert grid[(16, 4)] == pytest.approx(
            next(
                p.fom_norm
                for p in result.points
                if (p.bv_size, p.unfold_threshold) == (16, 4)
            )
        )

    def test_grid_rejects_unknown_metric(self, result):
        with pytest.raises(KeyError):
            result.grid("latency")
