"""Metric aggregation tests."""

import pytest

from repro.analysis.metrics import (
    METRIC_NAMES,
    average_normalized,
    geometric_mean,
    improvement_factor,
    savings_percent,
)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestAverages:
    def test_average_normalized(self):
        per_dataset = {
            "A": {m: 0.5 for m in METRIC_NAMES},
            "B": {m: 2.0 for m in METRIC_NAMES},
        }
        averaged = average_normalized(per_dataset)
        for metric in METRIC_NAMES:
            assert averaged[metric] == pytest.approx(1.0)


class TestConversions:
    def test_savings_percent(self):
        assert savings_percent(0.33) == pytest.approx(67.0)
        assert savings_percent(1.0) == 0.0

    def test_improvement_factor(self):
        assert improvement_factor(0.25) == pytest.approx(4.0)
        assert improvement_factor(0.0) == float("inf")
