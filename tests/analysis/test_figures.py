"""CSV figure-export tests."""

import csv
import io

import pytest

from repro.analysis.compare import compare_architectures, normalized_comparison
from repro.analysis.dse import explore_dataset
from repro.analysis.figures import (
    dse_to_csv,
    normalized_to_csv,
    reports_to_csv,
    sweep_to_csv,
)


@pytest.fixture(scope="module")
def reports():
    return compare_architectures(
        ["ab{30}c"], b"a" + b"b" * 30 + b"c" + b"z" * 100,
        architectures=("CA", "CAMA", "BVAP"),
    )


def parse_csv(text):
    return list(csv.DictReader(io.StringIO(text)))


class TestReportsCsv:
    def test_row_per_architecture(self, reports):
        rows = parse_csv(reports_to_csv(reports))
        assert {row["architecture"] for row in rows} == {"CA", "CAMA", "BVAP"}

    def test_values_numeric(self, reports):
        rows = parse_csv(reports_to_csv(reports))
        for row in rows:
            assert float(row["area_mm2"]) > 0
            assert int(row["matches"]) == 1

    def test_writes_file(self, reports, tmp_path):
        path = tmp_path / "out.csv"
        reports_to_csv(reports, str(path))
        assert path.read_text().startswith("architecture")


class TestNormalizedCsv:
    def test_metrics_columns(self, reports):
        rows = parse_csv(normalized_to_csv(normalized_comparison(reports)))
        ca = next(row for row in rows if row["architecture"] == "CA")
        assert float(ca["fom"]) == pytest.approx(1.0)


class TestDseCsv:
    def test_grid_rows(self):
        result = explore_dataset(
            "RegexLib", regex_count=5, input_length=300, seed=0,
            bv_sizes=(16,), unfold_thresholds=(4, 8),
        )
        rows = parse_csv(dse_to_csv(result))
        assert len(rows) == 2
        assert rows[0]["dataset"] == "RegexLib"


class TestSweepCsv:
    def test_dict_rows(self):
        text = sweep_to_csv([{"n": 16, "ratio": 0.5}, {"n": 64, "ratio": 0.2}])
        rows = parse_csv(text)
        assert [row["n"] for row in rows] == ["16", "64"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sweep_to_csv([])
