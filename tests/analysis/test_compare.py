"""Architecture-comparison driver tests."""

import random

import pytest

from repro.analysis.compare import (
    ALL_ARCHITECTURES,
    compare_architectures,
    normalized_comparison,
)

PATTERNS = ["ab{40}c", "hello"]


@pytest.fixture(scope="module")
def reports():
    rng = random.Random(0)
    data = bytes(rng.choice(b"abchelo ") for _ in range(800))
    return compare_architectures(PATTERNS, data)


class TestCompare:
    def test_all_architectures_present(self, reports):
        assert set(reports) == set(ALL_ARCHITECTURES)

    def test_identical_match_counts(self, reports):
        assert len({r.matches for r in reports.values()}) == 1

    def test_subset_selection(self):
        out = compare_architectures(PATTERNS, b"abc", architectures=("CAMA",))
        assert set(out) == {"CAMA"}

    def test_unknown_architecture_rejected(self):
        with pytest.raises(ValueError):
            compare_architectures(PATTERNS, b"abc", architectures=("TPU",))


class TestNormalisation:
    def test_base_is_unity(self, reports):
        normalised = normalized_comparison(reports)
        for value in normalised["CA"].values():
            assert value == pytest.approx(1.0)

    def test_custom_base(self, reports):
        normalised = normalized_comparison(reports, base="CAMA")
        for value in normalised["CAMA"].values():
            assert value == pytest.approx(1.0)

    def test_missing_base_rejected(self, reports):
        with pytest.raises(KeyError):
            normalized_comparison(reports, base="GPU")
