"""Unit tests for the regex AST and its smart constructors."""

import pytest

from repro.regex import ast
from repro.regex.charclass import CharClass

A = ast.symbol(CharClass.from_char(ord("a")))
B = ast.symbol(CharClass.from_char(ord("b")))


class TestSmartConstructors:
    def test_concat_drops_epsilon(self):
        assert ast.concat(ast.EPSILON, A) is A
        assert ast.concat(A, ast.EPSILON) is A

    def test_concat_all(self):
        node = ast.concat_all(A, B, A)
        assert str(node) == "aba"

    def test_alternation_idempotent(self):
        assert ast.alternation(A, A) is A

    def test_star_of_star_collapses(self):
        assert ast.star(ast.star(A)) == ast.star(A)

    def test_optional_of_optional_collapses(self):
        assert ast.optional(ast.optional(A)) == ast.optional(A)

    def test_repeat_zero_is_epsilon(self):
        assert ast.repeat(A, 0, 0) == ast.EPSILON

    def test_repeat_one_one_is_inner(self):
        assert ast.repeat(A, 1, 1) is A

    def test_repeat_zero_one_is_optional(self):
        assert ast.repeat(A, 0, 1) == ast.optional(A)

    def test_repeat_unbounded_low_zero_is_star(self):
        assert ast.repeat(A, 0, None) == ast.star(A)

    def test_repeat_unbounded_low_one_is_plus(self):
        assert ast.repeat(A, 1, None) == ast.plus(A)

    def test_repeat_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ast.Repeat(A, 5, 3)
        with pytest.raises(ValueError):
            ast.Repeat(A, -1, 3)

    def test_literal(self):
        assert str(ast.literal("ab")) == "ab"


class TestNullable:
    @pytest.mark.parametrize(
        "node,expected",
        [
            (ast.EPSILON, True),
            (A, False),
            (ast.concat(A, B), False),
            (ast.alternation(A, ast.EPSILON), True),
            (ast.star(A), True),
            (ast.plus(A), False),
            (ast.optional(A), True),
            (ast.repeat(A, 0, 5), True),
            (ast.repeat(A, 2, 5), False),
            (ast.repeat(ast.optional(A), 2, 5), True),
        ],
    )
    def test_nullable(self, node, expected):
        assert ast.nullable(node) is expected


class TestQueries:
    def test_walk_preorder(self):
        node = ast.concat(A, ast.star(B))
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Concat", "Symbol", "Star", "Symbol"]

    def test_size_counts_nodes(self):
        assert ast.size(ast.concat(A, B)) == 3

    def test_symbol_count(self):
        node = ast.concat(A, ast.repeat(B, 2, 9))
        assert ast.symbol_count(node) == 2

    def test_max_repeat_bound(self):
        node = ast.concat(ast.repeat(A, 2, 9), ast.repeat(B, 1, 40))
        assert ast.max_repeat_bound(node) == 40

    def test_max_repeat_bound_unbounded_uses_low(self):
        assert ast.max_repeat_bound(ast.repeat(A, 7, None)) == 7

    def test_has_bounded_repetition_threshold(self):
        node = ast.repeat(A, 2, 4)
        assert ast.has_bounded_repetition(node)
        assert not ast.has_bounded_repetition(node, threshold=4)


class TestPrinting:
    @pytest.mark.parametrize(
        "build,text",
        [
            (lambda: ast.repeat(A, 3, 3), "a{3}"),
            (lambda: ast.repeat(A, 2, 5), "a{2,5}"),
            (lambda: ast.Repeat(A, 2, None), "a{2,}"),
            (lambda: ast.star(ast.concat(A, B)), "(ab)*"),
            (lambda: ast.alternation(A, B), "a|b"),
            (lambda: ast.concat(ast.alternation(A, B), A), "(a|b)a"),
            (lambda: ast.optional(A), "a?"),
            (lambda: ast.plus(A), "a+"),
        ],
    )
    def test_str(self, build, text):
        assert str(build()) == text

    def test_operator_sugar(self):
        assert str(A | B) == "a|b"
        assert str(A + B) == "ab"
