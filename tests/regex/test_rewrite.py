"""Unit tests for the §7 rewrite rules (Examples 7.1 and 7.2)."""

import pytest

from repro.matching.oracle import match_ends
from repro.regex import ast
from repro.regex.parser import parse
from repro.regex.rewrite import (
    RewriteParams,
    decompose_bounds,
    denull,
    is_supported_repeat,
    rewrite,
    supported_range_widths,
    unfold_all,
    unfold_repeat,
    unfold_small,
)

P64 = RewriteParams(bv_size=64, unfold_threshold=4)


class TestUnfolding:
    def test_exact_unfold(self):
        node = unfold_repeat(parse("a"), 3, 3)
        assert str(node) == "aaa"

    def test_range_unfold_uses_optionals(self):
        node = unfold_repeat(parse("d"), 1, 3)
        assert str(node) == "dd?d?"

    def test_at_least_unfold_uses_star(self):
        node = unfold_repeat(parse("f"), 2, None)
        assert str(node) == "fff*"

    def test_example_7_1(self):
        """Paper Example 7.1 with threshold 4."""
        node = parse("a(bc){2}d{1,3}ef{2,}g{7}")
        rewritten = unfold_small(node, 4)
        assert str(rewritten) == "abcbcdd?d?efff*g{7}"

    def test_unfold_all_removes_every_repeat(self):
        node = unfold_all(parse("a{3}(bc){2,8}d{5,}"))
        assert not any(isinstance(n, ast.Repeat) for n in node.walk())

    def test_unfold_small_keeps_large(self):
        node = unfold_small(parse("a{3}b{100}"), 4)
        repeats = [n for n in node.walk() if isinstance(n, ast.Repeat)]
        assert len(repeats) == 1
        assert repeats[0].low == 100


class TestDenull:
    def test_denull_epsilon_is_none(self):
        assert denull(ast.EPSILON) is None

    def test_denull_symbol_unchanged(self):
        node = parse("a")
        assert denull(node) == node

    def test_denull_star_becomes_plus(self):
        assert str(denull(parse("a*"))) == "a+"

    def test_denull_optional_strips(self):
        assert str(denull(parse("a?"))) == "a"

    def test_denull_preserves_nonempty_language(self):
        for pattern in ("a*b?", "(a|b?)c*", "(ab)?|c*"):
            node = parse(pattern)
            stripped = denull(node)
            data = b"abcabcaabbcc"
            assert match_ends(stripped, data) == match_ends(node, data)

    def test_denull_result_not_nullable(self):
        for pattern in ("a*", "a?b*", "(a?|b*)+"):
            stripped = denull(parse(pattern))
            assert stripped is None or not ast.nullable(stripped)


class TestDecomposeBounds:
    def test_example_7_2_exact(self):
        """b{147} -> b{64} b{64} b{19}."""
        assert decompose_bounds(147, 147, P64) == [(64, 64), (64, 64), (19, 19)]

    def test_example_7_2_range(self):
        """b{2,114}: mins sum to 2, maxes to 114, supported widths only."""
        pieces = decompose_bounds(2, 114, P64)
        assert sum(lo for lo, _ in pieces) == 2
        assert sum(hi for _, hi in pieces) == 114
        widths = supported_range_widths(64)
        for lo, hi in pieces:
            assert lo == hi or hi in widths or hi <= P64.unfold_threshold

    def test_example_7_2_one_hundred(self):
        """a{1,100} -> a{1,64} a{0,32} then a small unfoldable tail."""
        pieces = decompose_bounds(1, 100, P64)
        assert pieces[0] == (1, 64)
        assert pieces[1] == (0, 32)
        assert sum(hi for _, hi in pieces) == 100
        assert sum(lo for lo, _ in pieces) == 1

    def test_invariant_over_many_bounds(self):
        for low in (0, 1, 2, 5, 50, 63, 64, 65):
            for high in (low, low + 1, low + 17, low + 200, low + 999):
                if high == 0:
                    continue
                pieces = decompose_bounds(low, high, P64)
                assert sum(lo for lo, _ in pieces) == low, (low, high, pieces)
                assert sum(hi for _, hi in pieces) == high, (low, high, pieces)

    def test_small_bv_size(self):
        params = RewriteParams(bv_size=16, unfold_threshold=4)
        pieces = decompose_bounds(40, 40, params)
        assert pieces == [(16, 16), (16, 16), (8, 8)]

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            decompose_bounds(5, 3, P64)


class TestSupportedWidths:
    def test_widths_for_64(self):
        assert supported_range_widths(64) == (64, 32, 16, 8, 4, 2)

    def test_widths_for_16(self):
        assert supported_range_widths(16) == (16, 8, 4, 2)


class TestRewrite:
    def test_output_repeats_all_supported(self):
        patterns = [
            "ab{147}c",
            "ab{2,114}c",
            "a{1,100}b",
            "(ab){300}",
            "a{5,}b",
            "x(a?b){3,90}y",
            "(a{10}){3}",
        ]
        for pattern in patterns:
            rewritten = rewrite(parse(pattern), P64)
            for node in rewritten.walk():
                if isinstance(node, ast.Repeat):
                    assert is_supported_repeat(node, P64), (pattern, str(node))

    def test_nullable_body_normalised(self):
        rewritten = rewrite(parse("(a?){20}"), P64)
        for node in rewritten.walk():
            if isinstance(node, ast.Repeat):
                assert not ast.nullable(node.inner)

    def test_nested_counting_flattened(self):
        rewritten = rewrite(parse("(a{10}b){8}"), P64)
        for node in rewritten.walk():
            if isinstance(node, ast.Repeat):
                assert not ast.has_bounded_repetition(node.inner)

    @pytest.mark.parametrize(
        "pattern,data",
        [
            ("a{3,10}b", b"aaaab" + b"aab" + b"a" * 12 + b"b"),
            ("(a?){6}b", b"aaab" + b"b"),
            ("a{2,}b", b"ab aab aaab"),
            ("(ab){2,5}c", b"ababc" + b"abc"),
            ("x.{9}y", b"x123456789y"),
        ],
    )
    def test_rewrite_preserves_language(self, pattern, data):
        node = parse(pattern)
        params = RewriteParams(bv_size=8, unfold_threshold=2)
        assert match_ends(rewrite(node, params), data) == match_ends(node, data)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RewriteParams(unfold_threshold=1)
        with pytest.raises(ValueError):
            RewriteParams(bv_size=48)
