"""Unit tests for the PCRE-subset parser."""

import pytest

from repro.regex import ast
from repro.regex.charclass import DIGIT, SPACE, WORD, CharClass
from repro.regex.parser import RegexSyntaxError, parse


def cc_of(node):
    assert isinstance(node, ast.Symbol)
    return node.cc


class TestAtoms:
    def test_literal_bytes(self):
        assert str(parse("abc")) == "abc"

    def test_dot_is_any(self):
        assert cc_of(parse(".")).is_any()

    def test_hex_escape(self):
        assert cc_of(parse("\\x41")) == CharClass.from_char(0x41)

    def test_single_digit_hex_escape(self):
        assert cc_of(parse("\\xf")) == CharClass.from_char(0xF)

    def test_control_escapes(self):
        assert cc_of(parse("\\n")) == CharClass.from_char(ord("\n"))
        assert cc_of(parse("\\t")) == CharClass.from_char(ord("\t"))

    @pytest.mark.parametrize(
        "escape,expected",
        [("\\d", DIGIT), ("\\D", ~DIGIT), ("\\w", WORD), ("\\s", SPACE)],
    )
    def test_class_escapes(self, escape, expected):
        assert cc_of(parse(escape)) == expected

    def test_escaped_metachar(self):
        assert cc_of(parse("\\.")) == CharClass.from_char(ord("."))

    def test_backreference_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("(a)\\1")


class TestBracketClasses:
    def test_simple_class(self):
        assert cc_of(parse("[abc]")) == CharClass.from_chars(b"abc")

    def test_range(self):
        assert cc_of(parse("[a-f]")) == CharClass.from_range(ord("a"), ord("f"))

    def test_negated(self):
        cc = cc_of(parse("[^ab]"))
        assert ord("a") not in cc
        assert ord("z") in cc

    def test_class_with_escape(self):
        assert cc_of(parse("[\\d_]")) == DIGIT | CharClass.from_char(ord("_"))

    def test_literal_close_bracket_first(self):
        assert ord("]") in cc_of(parse("[]a]"))

    def test_literal_dash_at_end(self):
        assert ord("-") in cc_of(parse("[a-]"))

    def test_reversed_range_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[z-a]")

    def test_unterminated_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[abc")


class TestQuantifiers:
    def test_star_plus_optional(self):
        assert str(parse("ab*c+d?")) == "ab*c+d?"

    def test_exact_bound(self):
        node = parse("a{5}")
        assert isinstance(node, ast.Repeat)
        assert (node.low, node.high) == (5, 5)

    def test_range_bound(self):
        node = parse("a{2,7}")
        assert (node.low, node.high) == (2, 7)

    def test_at_least_bound(self):
        node = parse("a{3,}")
        assert (node.low, node.high) == (3, None)

    def test_bound_zero_one_becomes_optional(self):
        assert parse("a{0,1}") == ast.optional(parse("a"))

    def test_literal_brace_not_quantifier(self):
        node = parse("a{x}")
        symbols = [n for n in node.walk() if isinstance(n, ast.Symbol)]
        assert [tuple(s.cc)[0] for s in symbols] == [
            ord("a"), ord("{"), ord("x"), ord("}"),
        ]
        # printed form escapes the braces and re-parses identically
        assert str(parse(str(node))) == str(node)

    def test_reversed_bounds_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("a{7,2}")

    def test_lazy_suffix_ignored(self):
        assert str(parse("a+?")) == str(parse("a+"))
        assert str(parse("a{2,5}?")) == str(parse("a{2,5}"))

    def test_quantifier_without_atom_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("*a")

    def test_quantifier_applies_to_group(self):
        node = parse("(ab){3}")
        assert isinstance(node, ast.Repeat)
        assert str(node.inner) == "ab"


class TestGroupsAndAlternation:
    def test_alternation(self):
        node = parse("a|bc")
        assert isinstance(node, ast.Alternation)

    def test_non_capturing_group(self):
        assert str(parse("(?:ab)+")) == str(parse("(ab)+"))

    def test_inline_case_flag_folds(self):
        node = parse("(?i:ab)")
        first = next(n for n in node.walk() if isinstance(n, ast.Symbol))
        assert ord("a") in first.cc and ord("A") in first.cc

    def test_scoped_flag_restored_after_group(self):
        node = parse("(?i:a)b")
        symbols = [n for n in node.walk() if isinstance(n, ast.Symbol)]
        assert ord("A") in symbols[0].cc
        assert ord("B") not in symbols[1].cc

    def test_global_inline_flag(self):
        node = parse("(?i)ab")
        symbols = [n for n in node.walk() if isinstance(n, ast.Symbol)]
        assert all(ord(ch.upper()) in s.cc for ch, s in zip("ab", symbols))

    def test_ignorecase_argument(self):
        node = parse("a[b-d]", ignorecase=True)
        symbols = [n for n in node.walk() if isinstance(n, ast.Symbol)]
        assert ord("A") in symbols[0].cc
        assert ord("C") in symbols[1].cc and ord("c") in symbols[1].cc

    def test_unknown_inline_flag_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("(?q)ab")

    def test_dotall_flag_is_noop(self):
        assert str(parse("(?s:a.b)")) == str(parse("a.b"))

    def test_lookahead_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("(?=ab)")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("(ab")
        with pytest.raises(RegexSyntaxError):
            parse("ab)")

    def test_empty_alternative(self):
        node = parse("a|")
        assert ast.nullable(node)


class TestAnchors:
    def test_anchors_kept_as_assertion_nodes(self):
        node = parse("^abc$")
        kinds = [
            n.kind for n in node.walk() if isinstance(n, ast.Anchor)
        ]
        assert kinds.count(ast.Anchor.START) == 1
        assert kinds.count(ast.Anchor.END) == 1
        assert str(node) == "^abc$"

    def test_word_boundary_parses(self):
        node = parse(r"\bfoo\b")
        kinds = [
            n.kind for n in node.walk() if isinstance(n, ast.Anchor)
        ]
        assert kinds == [ast.Anchor.WORD, ast.Anchor.WORD]

    def test_quantified_anchor_rejected(self):
        for pattern in ("^*a", "a$+", r"a\b{2}"):
            with pytest.raises(RegexSyntaxError):
                parse(pattern)

    def test_multiline_flag_with_anchors_unsupported(self):
        from repro.regex.parser import UnsupportedFeatureError

        with pytest.raises(UnsupportedFeatureError):
            parse("(?m)^abc$")

    def test_anchors_rejected_when_disallowed(self):
        with pytest.raises(RegexSyntaxError):
            parse("^abc$", allow_anchors=False)


class TestErrorReporting:
    def test_error_carries_position(self):
        with pytest.raises(RegexSyntaxError) as exc:
            parse("ab[")
        assert exc.value.pos >= 2
        assert "ab[" in str(exc.value)


class TestPosixClasses:
    def test_digit(self):
        assert cc_of(parse("[[:digit:]]")) == DIGIT

    def test_alpha(self):
        cc = cc_of(parse("[[:alpha:]]"))
        assert ord("a") in cc and ord("Z") in cc and ord("5") not in cc

    def test_combined_with_other_items(self):
        cc = cc_of(parse("[[:digit:]_]"))
        assert ord("_") in cc and ord("7") in cc

    def test_negated(self):
        cc = cc_of(parse("[^[:space:]]"))
        assert ord(" ") not in cc and ord("x") in cc

    def test_xdigit(self):
        cc = cc_of(parse("[[:xdigit:]]"))
        assert ord("f") in cc and ord("F") in cc and ord("g") not in cc

    def test_punct_excludes_alnum(self):
        cc = cc_of(parse("[[:punct:]]"))
        assert ord("!") in cc and ord("a") not in cc

    def test_unknown_name_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[[:bogus:]]")

    def test_unterminated_rejected(self):
        with pytest.raises(RegexSyntaxError):
            parse("[[:digit]")

    def test_matching(self):
        from repro.matching import PatternSet

        assert PatternSet(["[[:digit:]]{3}"]).match_ends(b"ab123cd") == [4]
