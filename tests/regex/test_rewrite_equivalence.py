"""Metamorphic rewrite equivalence: every §7 rewrite preserves the
match set.

Each rewrite in :mod:`repro.regex.rewrite` — unfolding (Example 7.1),
bound splitting over virtual bit-vector widths (Example 7.2), nullable
denormalisation, and the full pipeline — is a *language-preserving*
transformation.  This suite checks that claim against the brute-force
AST-denotation oracle on (a) targeted Example 7.1/7.2 shapes and (b)
seeded random regexes, across the ``bv_size`` × ``unfold_threshold``
parameter grid.  The oracle is O(n^3), so inputs stay small; each input
is noise seeded with fragments of the pattern's own language so the
counting machinery is actually entered.
"""

import random

import pytest

from repro.matching.oracle import match_ends, match_spans
from repro.regex import ast
from repro.regex.generate import random_match, random_regex
from repro.regex.parser import parse
from repro.regex.rewrite import (
    RewriteParams,
    denull,
    is_supported_repeat,
    rewrite,
    unfold_all,
    unfold_small,
)

#: Example 7.1 shapes (small-bound unfolds), Example 7.2 shapes (bounds
#: past the 8/16-bit virtual widths, so the split path runs even with
#: bv_size=64 excluded from the grid), nullable and nested bodies.
TARGETED = [
    "(bc){2}",
    "d{1,3}",
    "f{2,}",
    "b{17}",
    "b{2,23}",
    "a{1,20}",
    "(a|b){3,9}",
    "(ab){2,6}",
    "(a?b){2,5}",
    "(a?){4}",
    "((ab){2}c){2}",
    "a{3}b{2,}",
]

PARAM_GRID = [
    RewriteParams(bv_size=8, unfold_threshold=2),
    RewriteParams(bv_size=8, unfold_threshold=8),
    RewriteParams(bv_size=16, unfold_threshold=2),
    RewriteParams(bv_size=64, unfold_threshold=4),
]

RANDOM_SEEDS = list(range(25))


def build_input(node, seed, length=56):
    """Noise over the pattern's alphabet, salted with (often truncated)
    members of its language so bounded repetitions get entered."""
    rng = random.Random(seed)
    out = bytearray()
    while len(out) < length:
        if rng.random() < 0.35:
            try:
                fragment = random_match(node, rng, max_unbounded=2)
            except ValueError:
                fragment = b""
            if fragment and rng.random() < 0.5:
                fragment = fragment[: rng.randint(1, len(fragment))]
            out.extend(fragment)
        else:
            out.append(rng.choice(b"abcdf"))
    return bytes(out[:length])


def random_node(seed):
    return random_regex(
        random.Random(seed), alphabet=b"ab", depth=3, max_bound=10
    )


def assert_equivalent(original, transformed, data, context):
    assert match_ends(transformed, data) == match_ends(original, data), (
        str(original),
        str(transformed),
        data,
        context,
    )


# ---------------------------------------------------------------------------
# Unfolding (Example 7.1)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("pattern", TARGETED)
def test_unfold_all_preserves_matches_targeted(pattern):
    node = parse(pattern)
    for seed in range(3):
        data = build_input(node, seed)
        assert_equivalent(node, unfold_all(node), data, "unfold_all")


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_unfold_all_preserves_matches_random(seed):
    node = random_node(seed)
    data = build_input(node, seed)
    assert_equivalent(node, unfold_all(node), data, "unfold_all")


@pytest.mark.parametrize("pattern", TARGETED)
@pytest.mark.parametrize("threshold", [2, 8])
def test_unfold_small_preserves_matches(pattern, threshold):
    node = parse(pattern)
    data = build_input(node, 0)
    transformed = unfold_small(node, threshold)
    assert_equivalent(node, transformed, data, f"unfold_small({threshold})")


# ---------------------------------------------------------------------------
# Nullability normalisation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_denull_drops_exactly_the_empty_word(seed):
    """denull's contract is metamorphic too: the span set of the result
    is the original's minus the empty spans."""
    node = random_node(seed)
    data = build_input(node, seed, length=24)
    stripped = denull(node)
    expected = {(i, j) for i, j in match_spans(node, data) if i != j}
    got = set() if stripped is None else match_spans(stripped, data)
    assert got == expected, (str(node), stripped and str(stripped))


# ---------------------------------------------------------------------------
# Bound splitting + full pipeline (Example 7.2)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("pattern", TARGETED)
@pytest.mark.parametrize("params", PARAM_GRID, ids=lambda p: f"bv{p.bv_size}-t{p.unfold_threshold}")
def test_rewrite_preserves_matches_targeted(pattern, params):
    node = parse(pattern)
    for seed in range(2):
        data = build_input(node, seed)
        assert_equivalent(
            node, rewrite(node, params), data, f"rewrite({params})"
        )


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_rewrite_preserves_matches_random_across_grid(seed):
    node = random_node(seed)
    data = build_input(node, seed)
    expected = match_ends(node, data)
    for params in PARAM_GRID:
        got = match_ends(rewrite(node, params), data)
        assert got == expected, (str(node), params, data)


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_rewrite_output_repeats_supported_random(seed):
    """Postcondition: after the pipeline, every surviving Repeat is in
    hardware-supported form for the params it was rewritten under."""
    node = random_node(seed)
    for params in PARAM_GRID:
        for sub in rewrite(node, params).walk():
            if isinstance(sub, ast.Repeat):
                assert is_supported_repeat(sub, params), (
                    str(node),
                    str(sub),
                    params,
                )


def test_composed_rewrites_commute_on_match_set():
    """Metamorphic composition: rewriting an already-unfolded AST and
    unfolding a rewritten AST both land on the original match set."""
    for pattern in TARGETED:
        node = parse(pattern)
        data = build_input(node, 1)
        expected = match_ends(node, data)
        params = RewriteParams(bv_size=8, unfold_threshold=2)
        assert match_ends(rewrite(unfold_all(node), params), data) == expected
        assert match_ends(unfold_all(rewrite(node, params)), data) == expected
