"""Parser robustness fuzzing: arbitrary input never crashes unexpectedly."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex import ast
from repro.regex.parser import RegexSyntaxError, parse

PATTERN_ALPHABET = string.ascii_letters + string.digits + "\\[](){}|*+?.^$-,:!=<> \t"


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=PATTERN_ALPHABET, max_size=30))
def test_parse_never_crashes_unexpectedly(text):
    """Any input either parses to a Regex or raises RegexSyntaxError."""
    try:
        node = parse(text)
    except RegexSyntaxError:
        return
    assert isinstance(node, ast.Regex)


@settings(max_examples=200, deadline=None)
@given(st.text(alphabet=PATTERN_ALPHABET, max_size=20))
def test_successful_parses_reprint_and_reparse(text):
    """str(parse(p)) must itself parse, to an equivalent tree."""
    try:
        node = parse(text)
    except RegexSyntaxError:
        return
    printed = str(node)
    reparsed = parse(printed)
    # Printing is canonical: a second round trip is a fixed point.
    assert str(reparsed) == printed


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=12))
def test_parse_of_random_bytes_as_latin1(data):
    try:
        parse(data.decode("latin-1"))
    except (RegexSyntaxError, UnicodeEncodeError):
        pass
