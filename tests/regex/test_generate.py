"""Tests for the random-match sampler and random-regex generator."""

import random

from repro.matching.oracle import match_spans
from repro.regex import ast
from repro.regex.generate import random_charclass, random_match, random_regex
from repro.regex.parser import parse


class TestRandomMatch:
    def test_sample_is_in_language(self):
        rng = random.Random(0)
        for pattern in ("a{2,5}b", "(ab|cd)+x?", "a.{3}z", "[0-9]{4}"):
            node = parse(pattern)
            for _ in range(20):
                sample = random_match(node, rng)
                spans = match_spans(node, sample)
                assert (0, len(sample)) in spans, (pattern, sample)

    def test_epsilon_samples_empty(self):
        assert random_match(ast.EPSILON, random.Random(0)) == b""

    def test_unbounded_respects_cap(self):
        rng = random.Random(1)
        node = parse("a*")
        for _ in range(50):
            assert len(random_match(node, rng, max_unbounded=3)) <= 3

    def test_repeat_counts_within_bounds(self):
        rng = random.Random(2)
        node = parse("a{3,6}")
        for _ in range(50):
            assert 3 <= len(random_match(node, rng)) <= 6

    def test_deterministic_given_seed(self):
        node = parse("(ab|c){2,4}")
        one = [random_match(node, random.Random(7)) for _ in range(5)]
        two = [random_match(node, random.Random(7)) for _ in range(5)]
        assert one == two


class TestRandomRegex:
    def test_generates_valid_ast(self):
        rng = random.Random(3)
        for _ in range(100):
            node = random_regex(rng)
            assert isinstance(node, ast.Regex)
            text = str(node)
            assert text  # printable

    def test_samples_match_their_regex(self):
        rng = random.Random(4)
        for _ in range(40):
            node = random_regex(rng, depth=2, max_bound=5)
            sample = random_match(node, rng)
            assert (0, len(sample)) in match_spans(node, sample)

    def test_no_counting_when_disallowed(self):
        rng = random.Random(5)
        for _ in range(60):
            node = random_regex(rng, allow_counting=False)
            assert not any(isinstance(n, ast.Repeat) for n in node.walk())

    def test_charclass_restricted_to_alphabet_or_any(self):
        rng = random.Random(6)
        for _ in range(60):
            cc = random_charclass(rng, b"xyz")
            assert cc.is_any() or set(cc) <= {ord("x"), ord("y"), ord("z")}
