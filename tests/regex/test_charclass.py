"""Unit tests for character classes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.regex.charclass import (
    ALPHABET_SIZE,
    DIGIT,
    SPACE,
    WORD,
    CharClass,
    pretty,
)


class TestConstructors:
    def test_empty(self):
        cc = CharClass.empty()
        assert cc.is_empty()
        assert cc.size() == 0
        assert 0 not in cc

    def test_any_contains_every_byte(self):
        cc = CharClass.any()
        assert cc.is_any()
        assert all(b in cc for b in range(ALPHABET_SIZE))

    def test_from_char(self):
        cc = CharClass.from_char(ord("x"))
        assert cc.size() == 1
        assert ord("x") in cc
        assert ord("y") not in cc

    def test_from_char_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            CharClass.from_char(256)
        with pytest.raises(ValueError):
            CharClass.from_char(-1)

    def test_from_chars(self):
        cc = CharClass.from_chars(b"abc")
        assert sorted(cc) == [ord("a"), ord("b"), ord("c")]

    def test_from_range(self):
        cc = CharClass.from_range(ord("0"), ord("9"))
        assert cc == DIGIT
        assert cc.size() == 10

    def test_from_range_rejects_reversed(self):
        with pytest.raises(ValueError):
            CharClass.from_range(5, 3)

    def test_from_string(self):
        assert CharClass.from_string("ab") == CharClass.from_chars(b"ab")

    def test_mask_bounds_checked(self):
        with pytest.raises(ValueError):
            CharClass(1 << 256)
        with pytest.raises(ValueError):
            CharClass(-1)


class TestAlgebra:
    def test_union(self):
        assert (DIGIT | CharClass.from_char(ord("a"))).size() == 11

    def test_intersection(self):
        assert (WORD & DIGIT) == DIGIT

    def test_difference(self):
        letters = WORD - DIGIT - CharClass.from_char(ord("_"))
        assert ord("a") in letters
        assert ord("5") not in letters

    def test_complement_involution(self):
        assert ~~DIGIT == DIGIT

    def test_complement_partitions(self):
        assert (DIGIT | ~DIGIT).is_any()
        assert (DIGIT & ~DIGIT).is_empty()

    def test_overlaps(self):
        assert WORD.overlaps(DIGIT)
        assert not DIGIT.overlaps(SPACE)

    def test_issubset(self):
        assert DIGIT.issubset(WORD)
        assert not WORD.issubset(DIGIT)


class TestIdentity:
    def test_immutable(self):
        cc = CharClass.from_char(1)
        with pytest.raises(AttributeError):
            cc.mask = 5

    def test_hashable_and_equal(self):
        assert hash(CharClass.from_chars(b"ab")) == hash(CharClass.from_chars(b"ba"))
        assert CharClass.from_chars(b"ab") == CharClass.from_chars(b"ba")

    def test_not_equal_to_other_types(self):
        assert CharClass.from_char(1) != 2


class TestRangesAndPretty:
    def test_ranges_merges_consecutive(self):
        cc = CharClass.from_chars(b"abcxz")
        assert cc.ranges() == [
            (ord("a"), ord("c")),
            (ord("x"), ord("x")),
            (ord("z"), ord("z")),
        ]

    def test_pretty_singleton(self):
        assert pretty(CharClass.from_char(ord("a"))) == "a"

    def test_pretty_any(self):
        assert pretty(CharClass.any()) == "."

    def test_pretty_range(self):
        assert pretty(DIGIT) == "[0-9]"

    def test_pretty_negated_when_smaller(self):
        cc = ~CharClass.from_char(ord("a"))
        assert pretty(cc) == "[^a]"

    def test_pretty_escapes_specials(self):
        assert pretty(CharClass.from_char(ord("]"))) == "\\]"


@given(st.sets(st.integers(min_value=0, max_value=255)))
def test_iteration_roundtrip(byte_set):
    cc = CharClass.from_chars(byte_set)
    assert set(cc) == byte_set
    assert cc.size() == len(byte_set)


@given(
    st.sets(st.integers(min_value=0, max_value=255)),
    st.sets(st.integers(min_value=0, max_value=255)),
)
def test_union_is_set_union(left, right):
    combined = CharClass.from_chars(left) | CharClass.from_chars(right)
    assert set(combined) == left | right
