"""Quantifier edge syntax: differential accept/reject vs Python's ``re``.

The parser promises ``re``-compatible *syntax* judgements on quantifier
stacking (``a**`` and friends raise "multiple repeat"), with exactly two
documented divergences:

* **possessive quantifiers** (``a*+``, ``a{2,3}+``, ...): Python >= 3.11
  accepts them; this parser rejects them, because possessiveness changes
  the matched language and cannot be ignored like laziness can;
* **elided lower bound** (``{,n}``): Python reads ``a{,3}`` as
  ``a{0,3}``; this parser (like RE2 and PCRE's default) treats the brace
  as a literal, so ``a{,3}*`` parses here but is a "multiple repeat"
  error in Python.
"""

import re as pyre
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regex.parser import RegexSyntaxError, parse

ATOMS = ["a", "(ab)", "[ab]", ".", "(a|b)"]
QUANTS = ["*", "+", "?", "{2}", "{2,}", "{2,3}", "{0,2}", "{,3}"]
SUFFIXES = ["", "?", "*", "+", "{3}", "??", "?*", "?+", "?{3}"]


def py_accepts(pattern: str) -> bool:
    try:
        pyre.compile(pattern)
        return True
    except pyre.error:
        return False


def repo_accepts(pattern: str) -> bool:
    try:
        parse(pattern)
        return True
    except RegexSyntaxError:
        return False


def is_possessive(quant: str, suffix: str) -> bool:
    """A quantifier directly followed by ``+`` (Python 3.11 possessive)."""
    return suffix.startswith("+")


def has_elided_lower_bound(pattern: str) -> bool:
    return "{," in pattern


class TestDifferentialVsRe:
    @pytest.mark.parametrize("atom", ATOMS)
    def test_quantifier_stacking_judgements_match_re(self, atom):
        for quant in QUANTS:
            for suffix in SUFFIXES:
                pattern = atom + quant + suffix
                py_ok = py_accepts(pattern)
                repo_ok = repo_accepts(pattern)
                if has_elided_lower_bound(pattern):
                    # Documented divergence: '{,3}' is three literal
                    # atoms here, so the judgement must match the same
                    # pattern with the brace run replaced by a literal.
                    desugared = pattern.replace("{,3}", "z")
                    assert repo_ok == repo_accepts(desugared), pattern
                elif is_possessive(quant, suffix):
                    # Documented divergence: we reject possessives.
                    assert not repo_ok, pattern
                else:
                    assert py_ok == repo_ok, (
                        f"{pattern!r}: re={'ok' if py_ok else 'reject'} "
                        f"repo={'ok' if repo_ok else 'reject'}"
                    )

    @settings(max_examples=400, deadline=None)
    @given(
        st.text(
            alphabet=string.ascii_lowercase[:3] + "*+?{},123|.",
            min_size=1,
            max_size=12,
        )
    )
    def test_fuzzed_judgements_diverge_only_where_documented(self, pattern):
        py_ok = py_accepts(pattern)
        repo_ok = repo_accepts(pattern)
        if py_ok == repo_ok:
            return
        if repo_ok and not py_ok:
            # We are only ever *more* lenient via the literal-brace rule.
            assert "{" in pattern, pattern
        else:
            # Python is only more lenient via possessive quantifiers.
            assert pyre.search(r"[*+?}]\+", pattern), pattern


class TestStackedQuantifierRejection:
    """Regression pin for the "multiple repeat" bugfix: these used to be
    silently collapsed instead of rejected."""

    @pytest.mark.parametrize(
        "pattern,pos",
        [
            ("a**", 2),
            ("a+*", 2),
            ("a*+", 2),
            ("a++", 2),
            ("a?*", 2),
            ("a{2,3}*", 6),
            ("a{2}{3}", 4),
            ("a{2,}+", 5),
            ("(ab)**", 5),
            ("[xy]+*", 5),
            ("a*??", 3),
            ("a{2}?{3}", 5),
        ],
    )
    def test_rejected_with_position(self, pattern, pos):
        with pytest.raises(RegexSyntaxError) as excinfo:
            parse(pattern)
        error = excinfo.value
        assert "multiple repeat" in str(error)
        # The caret diagnostic points at the offending second quantifier.
        assert error.pos == pos

    @pytest.mark.parametrize(
        "pattern", ["a*?", "a+?", "a??", "a{2,3}?", "(a*)*", "(a{2})+"]
    )
    def test_lazy_and_grouped_stacks_still_parse(self, pattern):
        parse(pattern)


class TestAnchorsRegressionPin:
    """Anchors are real positional constraints (they used to be silently
    stripped to epsilon no-ops); a syntax error under
    ``allow_anchors=False``."""

    @pytest.mark.parametrize(
        "anchored,plain",
        [("^ab$", "ab"), ("^a{2,3}b", "a{2,3}b"), ("a|^b$", "a|b")],
    )
    def test_anchors_are_not_noops(self, anchored, plain):
        # The retired behaviour stripped the anchors; the AST now keeps
        # them and round-trips through the printer.
        assert str(parse(anchored)) != str(parse(plain))
        assert str(parse(anchored)) == anchored

    @pytest.mark.parametrize(
        "pattern,data,ends",
        [
            ("^a", b"a aa", [0]),
            ("a$", b"a aa", [3]),
            ("^a$", b"a", [0]),
            ("^a$", b"aa", []),
            ("a$b", b"ab ab", []),  # unsatisfiable: $ inside a word
            ("(^a|b)c", b"ac bc ac", [1, 4]),
        ],
    )
    def test_anchor_scan_semantics(self, pattern, data, ends):
        from repro.matching.engine import PatternSet

        assert PatternSet([pattern]).match_ends(data) == ends

    @pytest.mark.parametrize("pattern", ["^ab", "ab$"])
    def test_anchors_rejected_when_disallowed(self, pattern):
        with pytest.raises(RegexSyntaxError):
            parse(pattern, allow_anchors=False)

    def test_quantified_anchor_rejected_like_re(self):
        # Python rejects '^*' ("nothing to repeat"); now that anchors
        # are real assertion atoms, so does this parser.
        assert not py_accepts("^*ab")
        assert not repo_accepts("^*ab")
