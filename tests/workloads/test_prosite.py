"""PROSITE syntax translation tests."""

import pytest

from repro.matching import PatternSet
from repro.workloads.prosite import (
    PrositeSyntaxError,
    prosite_to_pcre,
    translate_collection,
)


class TestTranslation:
    def test_zinc_finger(self):
        assert (
            prosite_to_pcre("C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.")
            == "C.{2,4}C.{3}[LIVMFYWC].{8}H.{3,5}H"
        )

    def test_leucine_zipper(self):
        assert prosite_to_pcre("L-x(6)-L-x(6)-L-x(6)-L.") == "L.{6}L.{6}L.{6}L"

    def test_none_of(self):
        assert prosite_to_pcre("D-{ILVFYW}-E.") == "D[^ILVFYW]E"

    def test_repeated_class(self):
        assert prosite_to_pcre("[DE](2)-K.") == "[DE]{2}K"

    def test_anchors_preserved_for_parser(self):
        translated = prosite_to_pcre("<M-x(4)-K>.")
        assert translated.startswith("^") and translated.endswith("$")

    def test_star(self):
        assert prosite_to_pcre("A-x*-C.") == "A.*C"

    def test_lowercase_folded(self):
        assert prosite_to_pcre("c-x(3)-h.") == "C.{3}H"

    def test_trailing_dot_optional(self):
        assert prosite_to_pcre("A-C") == "AC"


class TestErrors:
    def test_empty_rejected(self):
        with pytest.raises(PrositeSyntaxError):
            prosite_to_pcre(".")

    def test_unknown_residue(self):
        with pytest.raises(PrositeSyntaxError):
            prosite_to_pcre("B-x.")  # B is not an amino acid

    def test_bad_bounds(self):
        with pytest.raises(PrositeSyntaxError):
            prosite_to_pcre("x(5,2).")

    def test_bad_element(self):
        with pytest.raises(PrositeSyntaxError):
            prosite_to_pcre("A--C.")

    def test_collection_skips_bad(self):
        out = translate_collection(["A-x.", "B-x.", "C-C."])
        assert out == ["A.", "CC"]


class TestAnchoredMotifSemantics:
    """``<``/``>`` motifs only fire at the sequence ends now that the
    compiler lowers anchors into real gates (they used to be stripped
    and matched anywhere)."""

    def test_end_anchored_motif_only_fires_at_sequence_end(self):
        pattern = prosite_to_pcre("C-x(2)-C>.")
        ps = PatternSet([pattern])
        # Interior occurrence: held as a candidate, never reported.
        assert [m.end for m in ps.scan(b"ACAKCDD")] == []
        # Same motif flush with the sequence end: reported at finish.
        assert [m.end for m in ps.scan(b"ADCAKC")] == [5]

    def test_start_anchored_motif_only_fires_at_offset_zero(self):
        pattern = prosite_to_pcre("<M-x(2)-K.")
        ps = PatternSet([pattern])
        assert [m.end for m in ps.scan(b"MAAKCMAAK")] == [3]
        assert [m.end for m in ps.scan(b"CMAAK")] == []

    def test_fully_anchored_motif(self):
        pattern = prosite_to_pcre("<M-x(2)-K>.")
        ps = PatternSet([pattern])
        assert [m.end for m in ps.scan(b"MAAK")] == [3]
        assert [m.end for m in ps.scan(b"MAAKC")] == []
        assert [m.end for m in ps.scan(b"CMAAK")] == []


class TestEndToEnd:
    def test_translated_motif_matches(self):
        pattern = prosite_to_pcre("C-x(2)-C.")
        matches = PatternSet([pattern]).scan(b"ACAKCD")
        assert [m.end for m in matches] == [4]

    def test_translated_motifs_compile(self):
        from repro.compiler import compile_ruleset

        motifs = [
            "C-x(2,4)-C-x(3)-[LIVMFYWC]-x(8)-H-x(3,5)-H.",
            "L-x(6)-L-x(6)-L-x(6)-L.",
            "[LIVM]-G-[ES]-G-x(5,18)-K.",
        ]
        ruleset = compile_ruleset([prosite_to_pcre(m) for m in motifs])
        assert len(ruleset.regexes) == 3
        assert ruleset.num_bv_stes > 0
