"""Input-stream generator tests."""

import random

import pytest

from repro.workloads.inputs import alpha_stream, background_bytes, dataset_stream


class TestAlphaStream:
    def test_length(self):
        assert len(alpha_stream(random.Random(0), 500, 0.1)) == 500

    def test_alphabet(self):
        stream = alpha_stream(random.Random(0), 500, 0.3)
        assert set(stream) <= {ord("a"), ord("b")}

    def test_ratio_close_to_alpha(self):
        stream = alpha_stream(random.Random(1), 20_000, 0.1)
        ratio = stream.count(ord("a")) / len(stream)
        assert 0.08 <= ratio <= 0.12

    def test_extremes(self):
        assert alpha_stream(random.Random(0), 100, 0.0) == b"b" * 100
        assert alpha_stream(random.Random(0), 100, 1.0) == b"a" * 100

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            alpha_stream(random.Random(0), 10, 1.5)


class TestBackground:
    def test_alphabet_respected(self):
        stream = background_bytes(random.Random(2), 300, b"xyz")
        assert set(stream) <= {ord("x"), ord("y"), ord("z")}


class TestDatasetStream:
    PATTERNS = ["needle", "ab{4}c"]

    def test_length_exact(self):
        stream = dataset_stream(
            self.PATTERNS, random.Random(3), 777, "abcdef"
        )
        assert len(stream) == 777

    def test_plants_matches(self):
        from repro.matching import PatternSet

        stream = dataset_stream(
            ["needle"], random.Random(4), 5000, "xyz", plant_rate=0.02,
            truncate_prob=0.0,
        )
        matches = PatternSet(["needle"]).scan(stream)
        assert matches  # planted fragments produce real matches

    def test_zero_plant_rate_is_background(self):
        stream = dataset_stream(
            self.PATTERNS, random.Random(5), 400, "xyz", plant_rate=0.0
        )
        assert set(stream) <= {ord("x"), ord("y"), ord("z")}

    def test_unparseable_patterns_skipped(self):
        stream = dataset_stream(
            ["(((", "ok"], random.Random(6), 100, "ab", plant_rate=0.1
        )
        assert len(stream) == 100

    def test_deterministic(self):
        one = dataset_stream(self.PATTERNS, random.Random(7), 300, "ab")
        two = dataset_stream(self.PATTERNS, random.Random(7), 300, "ab")
        assert one == two
