"""Ruleset importer and workload-profile tests."""

import os
import random

import pytest

from repro.matching import PatternSet
from repro.workloads import (
    WORKLOAD_PROFILES,
    import_rules,
    import_ruleset,
    parse_rule_lines,
)

FIXTURE = os.path.join(os.path.dirname(__file__), "data", "sample.rules")


class TestParseRuleLines:
    def test_metadata_extracted(self):
        rules = parse_rule_lines(
            [
                'alert tcp any any -> any any (msg:"admin probe"; '
                'pcre:"/^GET \\/admin/"; sid:2001; rev:1;)',
            ]
        )
        assert len(rules) == 1
        rule = rules[0]
        assert rule.pattern == r"^GET \/admin"
        assert rule.sid == 2001
        assert rule.msg == "admin probe"
        assert rule.lineno == 1
        assert rule.source == "pcre"

    def test_flags_folded_as_prefix(self):
        rules = parse_rule_lines(
            ['x (pcre:"/cmd\\.exe$/i"; sid:1;)', 'x (pcre:"/^a/smR"; sid:2;)']
        )
        assert rules[0].pattern == r"(?i)cmd\.exe$"
        # s and m survive (m so the compiler can quarantine line anchors);
        # Snort buffer modifiers like R are dropped.
        assert rules[1].pattern == "(?sm)^a"

    def test_content_becomes_literal_rule(self):
        rules = parse_rule_lines(
            ['x (content:"../.."; sid:3;)'], include_contents=True
        )
        assert len(rules) == 1
        assert rules[0].source == "content"
        assert rules[0].pattern == r"\.\./\.\."

    def test_comments_and_blanks_skipped(self):
        assert parse_rule_lines(["# comment", "", "   "]) == []


class TestImportRuleset:
    @pytest.fixture(scope="class")
    def imported(self):
        return import_ruleset(FIXTURE)

    def test_fixture_splits_into_accepted_and_quarantined(self, imported):
        summary = imported.summary
        # 5 compilable patterns: 3 anchored pcre + 1 content + \bwget\b.
        assert summary.compiled == 5
        assert summary.quarantined == 3
        assert summary.by_code() == {"E_UNSUPPORTED": 2, "E_SYNTAX": 1}

    def test_reports_align_with_rules(self, imported):
        assert len(imported.reports) == len(imported.rules)
        for index, report in enumerate(imported.reports):
            assert report.pattern_id == index
            assert report.pattern == imported.rules[index].pattern
        for index in imported.compiled:
            assert imported.reports[index].ok

    def test_quarantined_rules_carry_metadata(self, imported):
        quarantined_sids = {
            imported.rules[r.pattern_id].sid for r in imported.quarantined
        }
        assert quarantined_sids == {2005, 2006, 2007}

    def test_to_json_shape(self, imported):
        record = imported.to_json()
        assert record["compiled"] == 5
        assert record["quarantined"] == 3
        assert set(record["by_code"]) == {"E_UNSUPPORTED", "E_SYNTAX"}
        assert len(record["rules"]) == len(record["reports"]) == 8
        assert all("pattern" in r and "lineno" in r for r in record["rules"])
        assert all("status" in r for r in record["reports"])

    def test_accepted_patterns_scan(self, imported):
        ps = PatternSet(imported.accepted_patterns)
        assert ps.scan(b"GET /admin/config HTTP/1.1")
        assert ps.scan(b"ran wget here")
        assert not ps.scan(b"ran wgetter here")  # \b holds on both sides
        assert not ps.scan(b"plain GET /index.html HTTP/1.1")

    def test_anchored_rule_only_fires_at_record_start(self, imported):
        ps = PatternSet(imported.accepted_patterns)
        assert ps.scan(b"GET /admin HTTP/1.1")
        assert not ps.scan(b"log: GET /admin HTTP/1.1")


class TestWorkloadProfiles:
    @pytest.mark.parametrize("name", sorted(WORKLOAD_PROFILES))
    def test_profile_patterns_compile(self, name):
        profile = WORKLOAD_PROFILES[name]
        ps = PatternSet(list(profile.patterns))
        assert ps.patterns == list(profile.patterns)

    @pytest.mark.parametrize("name", sorted(WORKLOAD_PROFILES))
    def test_match_rate_contract(self, name):
        profile = WORKLOAD_PROFILES[name]
        ps = PatternSet(list(profile.patterns))
        rng = random.Random(5)
        assert all(
            not ps.scan(record)
            for record in profile.records(rng, 200, match_rate=0.0)
        )
        assert all(
            ps.scan(record)
            for record in profile.records(rng, 200, match_rate=1.0)
        )

    @pytest.mark.parametrize("name", sorted(WORKLOAD_PROFILES))
    def test_records_agree_with_python_re(self, name):
        import re as pyre

        profile = WORKLOAD_PROFILES[name]
        ps = PatternSet(list(profile.patterns))
        rng = random.Random(11)
        for record in profile.records(rng, 300, match_rate=0.5):
            text = record.decode("latin-1")
            expected = any(
                bool(pyre.search(p, text)) for p in profile.patterns
            )
            assert bool(ps.scan(record)) == expected, record

    @pytest.mark.parametrize("name", sorted(WORKLOAD_PROFILES))
    def test_ruleset_lines_round_trip(self, name):
        profile = WORKLOAD_PROFILES[name]
        imported = import_rules(
            profile.ruleset_lines(), include_contents=False
        )
        assert imported.summary.quarantined == 0
        assert imported.accepted_patterns == list(profile.patterns)
        assert [r.sid for r in imported.accepted] == [
            1000 + i for i in range(len(profile.patterns))
        ]

    def test_bad_match_rate_rejected(self):
        with pytest.raises(ValueError):
            WORKLOAD_PROFILES["ids"].records(random.Random(0), 1, 1.5)
