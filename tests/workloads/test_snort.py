"""Snort rule extraction tests."""

import pytest

from repro.matching import PatternSet
from repro.workloads.snort import (
    content_to_pcre,
    extract_contents,
    extract_pcre,
    rules_to_patterns,
)

RULE = (
    'alert tcp any any -> any 80 (msg:"test"; '
    'content:"GET |2F 61|dmin"; '
    'pcre:"/url=.{100}/i"; sid:1;)'
)


class TestPcreExtraction:
    def test_extracts_body(self):
        assert extract_pcre(RULE) == ["(?i)url=.{100}"]

    def test_no_flag(self):
        rule = 'pcre:"/ab{3}c/"'
        assert extract_pcre(rule) == ["ab{3}c"]

    def test_multiple_options(self):
        rule = 'pcre:"/aa/"; pcre:"/bb/i"'
        assert extract_pcre(rule) == ["aa", "(?i)bb"]

    def test_none(self):
        assert extract_pcre("alert tcp (sid:2;)") == []


class TestContentTranslation:
    def test_hex_span(self):
        assert content_to_pcre("GET |2F 61|dmin") == "GET \\x2f\\x61dmin"

    def test_metachars_escaped(self):
        assert content_to_pcre("a.b(c)") == "a\\.b\\(c\\)"

    def test_escaped_quote(self):
        assert content_to_pcre('say \\"hi\\"') == 'say "hi"'

    def test_bad_hex_rejected(self):
        with pytest.raises(ValueError):
            content_to_pcre("|2G|")

    def test_extract_contents(self):
        assert extract_contents(RULE) == ["GET \\x2f\\x61dmin"]


class TestRulesToPatterns:
    def test_full_rule(self):
        patterns = rules_to_patterns([RULE])
        assert "(?i)url=.{100}" in patterns
        assert "GET \\x2f\\x61dmin" in patterns

    def test_comments_skipped(self):
        assert rules_to_patterns(["# comment", "", RULE]) == rules_to_patterns(
            [RULE]
        )

    def test_patterns_actually_match(self):
        patterns = rules_to_patterns([RULE])
        ps = PatternSet(patterns)
        data = b"GET /admin URL=" + b"Q" * 100 + b"!"
        hits = {m.pattern_id for m in ps.scan(data)}
        assert hits == {0, 1}  # case-folded pcre + hex content

    def test_contents_can_be_excluded(self):
        patterns = rules_to_patterns([RULE], include_contents=False)
        assert patterns == ["(?i)url=.{100}"]
