"""Dataset profile tests: the paper's per-dataset statistics (§8)."""

import pytest

from repro.compiler import compile_ruleset
from repro.regex import has_bounded_repetition
from repro.regex.parser import parse
from repro.workloads.datasets import DATASET_NAMES, PROFILES, load_dataset


class TestLoading:
    def test_all_seven_datasets(self):
        assert set(DATASET_NAMES) == {
            "Snort",
            "Suricata",
            "Prosite",
            "ClamAV",
            "YARA",
            "SpamAssassin",
            "RegexLib",
        }

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("NotADataset")

    def test_deterministic(self):
        assert load_dataset("Snort", 20, 5) == load_dataset("Snort", 20, 5)

    def test_datasets_differ(self):
        assert load_dataset("Snort", 10, 0) != load_dataset("YARA", 10, 0)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_patterns_compile(self, name):
        patterns = load_dataset(name, 15, seed=2)
        ruleset = compile_ruleset(patterns)
        assert len(ruleset.regexes) >= 13  # near-zero rejection


class TestPaperStatistics:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_bv_ste_ratio_below_cap(self, name):
        """§6: BV-STE ratio typically below ~18% (tile provisioning)."""
        ruleset = compile_ruleset(load_dataset(name, 30, seed=1))
        assert ruleset.bv_ste_ratio() <= 0.25

    def test_spamassassin_low_bv_ratio(self):
        """§8: SpamAssassin's BV-STE proportion is only ~5%."""
        ruleset = compile_ruleset(load_dataset("SpamAssassin", 40, seed=1))
        assert ruleset.bv_ste_ratio() <= 0.08

    def test_prosite_small_bounds(self):
        """§8: most Prosite bounds are small."""
        from repro.regex import max_repeat_bound

        patterns = load_dataset("Prosite", 40, seed=1)
        bounds = [max_repeat_bound(parse(p)) for p in patterns]
        big = sum(1 for b in bounds if b > 64)
        assert big == 0

    def test_snort_has_large_bounds(self):
        from repro.regex import max_repeat_bound

        patterns = load_dataset("Snort", 40, seed=1)
        assert any(max_repeat_bound(parse(p)) > 256 for p in patterns)

    def test_counting_compression_on_network_datasets(self):
        """BVAP's STE count is a small fraction of the unfolded count on
        the counting-heavy datasets — the 85%-of-states observation."""
        for name in ("Snort", "ClamAV"):
            ruleset = compile_ruleset(load_dataset(name, 30, seed=1))
            unfolded = sum(r.unfolded_states or 0 for r in ruleset.regexes)
            assert ruleset.num_stes < 0.4 * unfolded

    def test_weak_compression_on_text_datasets(self):
        for name in ("SpamAssassin", "RegexLib"):
            ruleset = compile_ruleset(load_dataset(name, 30, seed=1))
            unfolded = sum(r.unfolded_states or 0 for r in ruleset.regexes)
            assert ruleset.num_stes > 0.6 * unfolded
