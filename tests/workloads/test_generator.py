"""Synthetic pattern generator tests."""

import random

import pytest

from repro.regex import has_bounded_repetition
from repro.regex.parser import parse
from repro.workloads.generator import (
    DatasetProfile,
    _sample_bound,
    generate_dataset,
    generate_pattern,
)

PROFILE = DatasetProfile(
    name="test",
    literal_pool="abc",
    class_tokens=("[ab]", "\\d"),
    counting_prob=0.5,
    blocks=(1, 2),
    bound_range=(4, 100),
)


class TestGeneration:
    def test_patterns_parse(self):
        rng = random.Random(0)
        for _ in range(100):
            pattern = generate_pattern(rng, PROFILE)
            parse(pattern)  # must not raise

    def test_counting_fraction_near_target(self):
        rng = random.Random(1)
        patterns = [generate_pattern(rng, PROFILE) for _ in range(400)]
        fraction = sum(
            1 for p in patterns if has_bounded_repetition(parse(p))
        ) / len(patterns)
        assert 0.38 <= fraction <= 0.62

    def test_bounds_within_range(self):
        rng = random.Random(2)
        for _ in range(200):
            pattern = generate_pattern(rng, PROFILE)
            node = parse(pattern)
            from repro.regex import max_repeat_bound

            assert max_repeat_bound(node) <= PROFILE.bound_range[1]

    def test_deterministic(self):
        assert generate_dataset(PROFILE, 10, seed=3) == generate_dataset(
            PROFILE, 10, seed=3
        )

    def test_seed_changes_output(self):
        assert generate_dataset(PROFILE, 10, seed=3) != generate_dataset(
            PROFILE, 10, seed=4
        )

    def test_count(self):
        assert len(generate_dataset(PROFILE, 25, seed=0)) == 25


class TestBoundSampling:
    def test_within_range(self):
        rng = random.Random(4)
        for _ in range(500):
            assert 5 <= _sample_bound(rng, 5, 500) <= 500

    def test_log_uniform_skews_small(self):
        rng = random.Random(5)
        values = [_sample_bound(rng, 2, 2000) for _ in range(2000)]
        median = sorted(values)[len(values) // 2]
        assert median < 200  # log-uniform median ~ sqrt(2*2000) = 63
