"""Supervised recovery for the sharded scan orchestrator.

The guarantee under test is the strongest one the supervision layer
makes: a scan that loses workers mid-stream — killed, hung, or crash-
looped into permanent failover — produces a merged match stream
**byte-identical** to an uninterrupted run.  The mechanisms behind it
(checkpoint snapshots, watermark-deduplicated tail replay, re-fusing a
dead shard's patterns onto a survivor) are each pinned here, plus the
bookkeeping: monotone per-shard counter deltas across restarts and
restart/failover records for every recovery.
"""

import os
import random
import signal

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.compiler import CompilerOptions, compile_pattern
from repro.matching import ShardedScanner
from repro.matching.fused import FusedMatcher, fuse_patterns
from repro.resilience import ChaosSpec, RestartPolicy, run_chaos

from .test_golden_corpus import CORPUS
from .test_golden_corpus import OPTIONS as GOLDEN_OPTIONS

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)

PATTERNS = ["ab{2,4}c", "a(ba){2}", "c{3,}", "(a|b){4}c", "bc"]

#: Fast supervision policy for tests: tight backoff, frequent
#: checkpoints (every 2 chunks) so replays stay short.
POLICY = RestartPolicy(
    max_restarts=2,
    backoff_base_s=0.01,
    backoff_cap_s=0.02,
    checkpoint_chunks=2,
)


def compile_all(patterns, options=OPTIONS):
    return [
        compile_pattern(p, regex_id, options)
        for regex_id, p in enumerate(patterns)
    ]


def make_data(seed, size=2048):
    rng = random.Random(seed)
    pool = [b"abbc", b"ababa", b"cccc", b"abab", b"bc", b"xy", b" "]
    out = bytearray()
    while len(out) < size:
        out += pool[rng.randrange(len(pool))]
    return bytes(out[:size])


def fused_stream(compiled, data, chunk_bytes):
    """The oracle: single-process fused engine over the same chunking."""
    matcher = FusedMatcher(fuse_patterns(compiled))
    ids = [c.regex_id for c in compiled]
    events, pos = [], 0
    for base in range(0, len(data), chunk_bytes):
        chunk = data[base : base + chunk_bytes]
        events.extend(
            (ids[slot], pos + end) for slot, end in matcher.feed(chunk)
        )
        pos += len(chunk)
    return events


def supervised_stream(
    compiled,
    data,
    chunk_bytes,
    faults=(),
    policy=POLICY,
    num_shards=2,
    recv_timeout_s=5.0,
):
    """Feed ``data`` through a supervised scanner, injecting ``faults``
    (``(chunk_index, shard, mode)`` triples) before the named chunks.
    Returns the absolute merged stream plus the scanner's recovery
    records."""
    events = []
    with ShardedScanner(
        compiled,
        num_shards=num_shards,
        chunk_bytes=chunk_bytes,
        recv_timeout_s=recv_timeout_s,
        restart_policy=policy,
        seed=0,
    ) as scanner:
        pos = 0
        for index in range(0, len(data), chunk_bytes):
            chunk_index = index // chunk_bytes
            for at, shard, mode in faults:
                if at == chunk_index:
                    scanner.inject_fault(shard, mode)
            chunk = data[index : index + chunk_bytes]
            events.extend(
                (pid, pos + end) for pid, end in scanner.feed(chunk)
            )
            pos += len(chunk)
        return events, {
            "restarts": list(scanner.restarts),
            "failovers": list(scanner.failovers),
            "failures": list(scanner.failures),
        }


# ---------------------------------------------------------------------------
# Checkpoint snapshot -> restore -> replay
# ---------------------------------------------------------------------------


class TestSnapshotReplay:
    """The recovery primitive: restoring a snapshot and replaying the
    tail regenerates exactly the events the original run produced."""

    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        split=st.integers(min_value=0, max_value=2048),
    )
    def test_fused_restore_replays_random_tail_identically(self, seed, split):
        compiled = compile_all(PATTERNS)
        data = make_data(seed)
        split = min(split, len(data))
        matcher = FusedMatcher(fuse_patterns(compiled))
        matcher.feed(data[:split])
        snapshot = matcher.state_snapshot()
        expected = matcher.feed(data[split:])

        clone = FusedMatcher(fuse_patterns(compiled))
        clone.restore_state(snapshot)
        assert clone.feed(data[split:]) == expected

    def test_snapshot_version_mismatch_rejected(self):
        compiled = compile_all(PATTERNS)
        matcher = FusedMatcher(fuse_patterns(compiled))
        snapshot = matcher.state_snapshot()
        snapshot["version"] = 999
        with pytest.raises(ValueError):
            matcher.restore_state(snapshot)

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=1_000),
        kill_chunk=st.integers(min_value=0, max_value=15),
    )
    def test_sharded_restart_at_random_chunk_byte_identical(
        self, seed, kill_chunk
    ):
        """Kill a worker before a random chunk; the supervised scanner's
        merged stream must match the fault-free fused oracle exactly."""
        compiled = compile_all(PATTERNS)
        data = make_data(seed)
        golden = fused_stream(compiled, data, 128)
        observed, outcome = supervised_stream(
            compiled, data, 128, faults=[(kill_chunk, 0, "die")]
        )
        assert observed == golden
        assert len(outcome["restarts"]) == 1
        assert not outcome["failures"]


# ---------------------------------------------------------------------------
# Watchdog: hung workers trip the heartbeat deadline
# ---------------------------------------------------------------------------


class TestWatchdog:
    def test_sigstopped_worker_is_restarted_byte_identically(self):
        """SIGSTOP freezes a worker without killing it — only the recv
        deadline can notice.  The watchdog must declare it dead, restart
        it from the checkpoint, and keep the stream identical."""
        compiled = compile_all(PATTERNS)
        data = make_data(3)
        golden = fused_stream(compiled, data, 256)
        observed, outcome = supervised_stream(
            compiled,
            data,
            256,
            faults=[(4, 0, "stop")],
            recv_timeout_s=1.0,
        )
        assert observed == golden
        assert len(outcome["restarts"]) == 1
        assert outcome["restarts"][0].reason == "timeout"
        assert not outcome["failures"]

    def test_slow_worker_within_deadline_is_tolerated(self):
        compiled = compile_all(PATTERNS)
        data = make_data(4)
        golden = fused_stream(compiled, data, 256)
        observed, outcome = supervised_stream(
            compiled, data, 256, faults=[(2, 0, "slow")]
        )
        assert observed == golden
        assert not outcome["restarts"]
        assert not outcome["failures"]

    def test_heartbeat_reports_worker_health(self):
        compiled = compile_all(PATTERNS)
        with ShardedScanner(
            compiled, num_shards=2, restart_policy=POLICY, seed=0
        ) as scanner:
            assert scanner.heartbeat() == {0: True, 1: True}
            os.kill(scanner._shards[0].process.pid, signal.SIGKILL)
            scanner._shards[0].process.join(2.0)
            beat = scanner.heartbeat()
            assert beat[0] is False
            assert beat[1] is True


# ---------------------------------------------------------------------------
# Failover: exhausted restart budget re-fuses onto survivors
# ---------------------------------------------------------------------------


class TestFailover:
    def test_failover_refuses_patterns_onto_survivor(self):
        """With a zero restart budget a killed shard's patterns migrate
        to a surviving worker; no pattern is lost and no shard degrades."""
        compiled = compile_all(PATTERNS)
        data = make_data(5)
        golden = fused_stream(compiled, data, 128)
        policy = RestartPolicy(
            max_restarts=0,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
            checkpoint_chunks=2,
        )
        observed, outcome = supervised_stream(
            compiled, data, 128, faults=[(6, 0, "die")], policy=policy
        )
        assert observed == golden
        assert len(outcome["failovers"]) == 1
        assert not outcome["failures"]
        failover = outcome["failovers"][0]
        assert failover.shard == 0
        assert failover.to_shard != 0
        assert failover.pattern_ids

    def test_failover_parity_on_golden_corpus(self):
        patterns = [pattern for pattern, _ in CORPUS]
        compiled = [
            compile_pattern(pattern, regex_id, GOLDEN_OPTIONS)
            for regex_id, pattern in enumerate(patterns)
        ]
        data = b" ".join(sample for _, sample in CORPUS) * 4
        golden = fused_stream(compiled, data, 64)
        policy = RestartPolicy(
            max_restarts=0,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
            checkpoint_chunks=2,
        )
        observed, outcome = supervised_stream(
            compiled,
            data,
            64,
            faults=[(4, 0, "die")],
            policy=policy,
            num_shards=3,
        )
        assert observed == golden
        assert len(outcome["failovers"]) == 1
        assert not outcome["failures"]

    def test_restart_budget_spent_before_failover(self):
        """Repeated kills: the policy's restart budget is consumed
        first, then the shard fails over — and the stream still
        matches the oracle."""
        compiled = compile_all(PATTERNS)
        data = make_data(6, size=4096)
        golden = fused_stream(compiled, data, 128)
        observed, outcome = supervised_stream(
            compiled,
            data,
            128,
            faults=[(2, 0, "die"), (8, 0, "die"), (14, 0, "die")],
        )
        assert observed == golden
        assert len(outcome["restarts"]) == POLICY.max_restarts
        assert len(outcome["failovers"]) == 1
        assert not outcome["failures"]


# ---------------------------------------------------------------------------
# Telemetry across recovery: monotone counters, flight events
# ---------------------------------------------------------------------------


class TestRecoveryTelemetry:
    def test_counter_deltas_stay_monotone_across_restart(self):
        """The restarted worker's counters begin again at zero; the
        parent folds the dead worker's totals into a carry so published
        per-shard deltas never go negative and never drop work.  The
        restarted shard's symbol count lands between ``len(data)``
        (nothing double-counted) and ``len(data) + replayed`` (the
        replayed tail recounted)."""
        compiled = compile_all(["ax", "bx"])
        data = b"ax bx cx " * 40
        chunks = [data[i : i + 64] for i in range(0, len(data), 64)]
        with telemetry.session():
            with ShardedScanner(
                compiled,
                num_shards=2,
                chunk_bytes=64,
                restart_policy=POLICY,
                seed=0,
            ) as scanner:
                for index, chunk in enumerate(chunks):
                    if index == 3:
                        scanner.inject_fault(0, "die")
                    scanner.feed(chunk)
                replayed = sum(r.replayed_bytes for r in scanner.restarts)
                assert len(scanner.restarts) == 1
            counters = telemetry.snapshot()["counters"]
        assert counters["scan.shard.symbols{shard=1}"] == len(data)
        restarted = counters["scan.shard.symbols{shard=0}"]
        assert len(data) <= restarted <= len(data) + replayed
        assert counters["scan.shard.restarts"] == 1
        assert counters["scan.shard.replayed_bytes"] == replayed

    def test_restarts_and_failovers_recorded_in_flight_ring(self):
        from repro.telemetry import flight

        compiled = compile_all(PATTERNS)
        data = make_data(7)
        policy = RestartPolicy(
            max_restarts=1,
            backoff_base_s=0.01,
            backoff_cap_s=0.02,
            checkpoint_chunks=2,
        )
        flight.enable()
        try:
            supervised_stream(
                compiled,
                data,
                128,
                faults=[(2, 0, "die"), (6, 0, "die")],
                policy=policy,
            )
            kinds = [e["kind"] for e in flight.recorder().events()]
        finally:
            flight.disable()
        assert "shard_restart" in kinds
        assert "shard_failover" in kinds
        restart = next(
            e
            for e in flight.recorder().events()
            if e["kind"] == "shard_restart"
        )
        assert restart["shard"] == 0
        assert restart["attempt"] == 1

    def test_restart_records_carry_replay_accounting(self):
        compiled = compile_all(PATTERNS)
        data = make_data(8)
        _, outcome = supervised_stream(
            compiled, data, 128, faults=[(5, 0, "die")]
        )
        (restart,) = outcome["restarts"]
        assert restart.shard == 0
        assert restart.attempt == 1
        assert restart.backoff_s >= 0.0
        assert restart.replayed_bytes % 128 == 0
        assert 0 < restart.replayed_bytes <= 128 * POLICY.checkpoint_chunks


# ---------------------------------------------------------------------------
# Chaos campaigns: the pinned restart and failover parity seeds
# ---------------------------------------------------------------------------


class TestChaosCampaign:
    def test_pinned_seed_kill_restart_path_byte_identical(self):
        compiled = compile_all(PATTERNS)
        data = make_data(9, size=8192)
        spec = ChaosSpec(
            seed=7,
            kinds=("kill",),
            num_faults=1,
            shards=2,
            chunk_bytes=512,
            max_restarts=2,
            checkpoint_chunks=2,
        )
        report = run_chaos(compiled, data, spec)
        assert not report.diverged
        assert report.restarts == 1
        assert report.failovers == 0
        assert report.chaos_matches == report.golden_matches

    def test_pinned_seed_kill_failover_path_byte_identical(self):
        compiled = compile_all(PATTERNS)
        data = make_data(9, size=8192)
        spec = ChaosSpec(
            seed=7,
            kinds=("kill",),
            num_faults=1,
            shards=2,
            chunk_bytes=512,
            max_restarts=0,
            checkpoint_chunks=2,
        )
        report = run_chaos(compiled, data, spec)
        assert not report.diverged
        assert report.restarts == 0
        assert report.failovers == 1
        assert report.degraded == 0

    def test_mixed_kill_stop_campaign_is_lossless(self):
        compiled = compile_all(PATTERNS)
        data = make_data(10, size=8192)
        spec = ChaosSpec(
            seed=3,
            kinds=("kill", "stop"),
            num_faults=2,
            shards=2,
            chunk_bytes=512,
            max_restarts=2,
            checkpoint_chunks=2,
            recv_timeout_s=1.0,
        )
        report = run_chaos(compiled, data, spec)
        assert not report.diverged
        assert report.restarts + report.failovers >= 1


# ---------------------------------------------------------------------------
# Unsupervised scanners keep the old degrade-only contract
# ---------------------------------------------------------------------------


class TestUnsupervisedUnchanged:
    def test_no_policy_still_degrades(self):
        compiled = compile_all(PATTERNS)
        data = make_data(11)
        golden = fused_stream(compiled, data, 256)
        observed, outcome = supervised_stream(
            compiled, data, 256, faults=[(2, 0, "die")], policy=None
        )
        assert not outcome["restarts"]
        assert not outcome["failovers"]
        assert len(outcome["failures"]) == 1
        # Fail-soft, not fail-silent: the stream loses only events owned
        # by the degraded shard's patterns, and loses some of those.
        dead_ids = set(outcome["failures"][0].pattern_ids)
        missing = set(golden) - set(observed)
        assert set(observed) <= set(golden)
        assert {pid for pid, _ in missing} <= dead_ids
