"""PatternSet public API tests."""

import pytest

from repro.compiler import CompilerOptions
from repro.matching import ENGINES, Match, PatternSet


class TestScan:
    def test_quickstart(self):
        ps = PatternSet(["ab{3}c", "xy"])
        assert [(m.pattern_id, m.end) for m in ps.scan(b"zabbbc xy")] == [
            (0, 5),
            (1, 8),
        ]

    def test_scan_resets_state(self):
        ps = PatternSet(["ab"])
        assert ps.scan(b"a") == []
        assert ps.scan(b"b") == []  # 'a' from the previous scan forgotten

    def test_feed_is_streaming(self):
        ps = PatternSet(["ab"])
        ps.reset()
        assert ps.feed(b"a") == []
        assert ps.feed(b"b") == [Match(0, 0)]

    def test_match_ends_single_pattern(self):
        ps = PatternSet(["a{2}"])
        assert ps.match_ends(b"aaa") == [1, 2]

    def test_count_matches(self):
        ps = PatternSet(["a", "b"])
        counts = PatternSet(["a", "b"]).count_matches(b"aab")
        assert counts == {0: 2, 1: 1}

    def test_patterns_property(self):
        ps = PatternSet(["a", "b{3}"])
        assert ps.patterns == ["a", "b{3}"]


class TestEngines:
    def test_all_engines_agree(self):
        data = b"xx abbbbc abbc ab"
        results = {
            engine: PatternSet(["ab{2,4}c"], engine=engine).match_ends(data)
            for engine in ENGINES
        }
        values = list(results.values())
        assert all(v == values[0] for v in values), results

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError):
            PatternSet(["a"], engine="quantum")

    def test_options_forwarded(self):
        ps = PatternSet(
            ["ab{10}c"], options=CompilerOptions(unfold_threshold=12)
        )
        assert ps.compiled[0].num_bv_stes == 0


class TestErrors:
    def test_bad_pattern_raises(self):
        with pytest.raises(ValueError):
            PatternSet(["("])

    def test_match_is_value_object(self):
        assert Match(1, 2) == Match(1, 2)
        assert Match(1, 2) != Match(1, 3)
