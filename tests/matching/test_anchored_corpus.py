"""Anchored golden corpus: ^/$/\\b patterns through every engine.

The anchored counterpart of ``test_golden_corpus``: a hand-curated set
of anchored rule-like patterns, each over an input crafted to exercise
both the gated matches and the near-misses the gates must reject
(interior occurrences of ``^``-patterns, non-final occurrences of
``$``-patterns, unbounded ``\\b`` contexts).  Verified across every
engine against the brute-force oracle, one-shot and chunked with
end-of-input finalisation, through sharded scans with kill/restart
recovery, and differentially against Python ``re``.
"""

import random
import re as pyre

import pytest

from repro.compiler import CompilerOptions, compile_pattern
from repro.matching import ENGINES, Match, PatternSet
from repro.matching.oracle import match_ends as oracle_ends
from repro.regex.generate import random_regex
from repro.regex.parser import parse
from repro.resilience import Budget, ChaosSpec, RestartPolicy, run_chaos

OPTIONS = CompilerOptions(bv_size=16, unfold_threshold=2)

#: (pattern, input) pairs.  Inputs are sized for the O(n^3) oracle and
#: crafted so every gate has both a firing and a rejected occurrence.
CORPUS = [
    # ^ start gates: an interior occurrence must stay silent
    ("^GET /[a-z]{4,8}", b"GET /admin GET /x"),
    ("^a{2,4}b", b"aaab aab"),
    ("^ab$", b"ab"),
    ("^(a|b){2}c", b"abc bac"),
    (r"^\d{2,4}-\d{2}", b"2026-08 end"),
    # $ end gates: deferred candidates, only the final one reports
    ("c{3}$", b"ccc cc ccc"),
    ("end$", b"the end ended end"),
    ("^x{2,}y$", b"xxxxy"),
    # \b word boundaries: offset-0, confirm-byte, and end-of-input forms
    (r"\bcat\b", b"cat catalog my cat"),
    (r"\b\d{3}-\d{2}\b", b"123-45 1234-56 a123-45"),
    (r"ERROR\b", b"ERROR: disk ERRORS ERROR"),
    (r"\bx{2,3}\b", b"xx xxxx xxx."),
    # anchors under alternation: variants with different gates
    ("(^ab|cd)e", b"abe cde xabe"),
    ("a$|^b", b"bxa"),
]

#: Patterns whose anchors are unsatisfiable: the empty matcher.
IMPOSSIBLE = ["a$b", "a^b", "a\\bb", "x$y{1,3}z"]


def _ends(matches, pattern_id=0):
    return sorted(m.end for m in matches if m.pattern_id == pattern_id)


@pytest.mark.parametrize("pattern,data", CORPUS)
def test_anchored_corpus_has_matches(pattern, data):
    """Each corpus entry actually exercises the gated matcher."""
    assert oracle_ends(parse(pattern), data), (pattern, data)


@pytest.mark.parametrize("pattern,data", CORPUS)
@pytest.mark.parametrize("engine", ENGINES)
def test_anchored_corpus_all_engines(pattern, data, engine):
    expected = oracle_ends(parse(pattern), data)
    kwargs = {"shards": 2} if engine == "sharded" else {}
    with PatternSet(
        [pattern], options=OPTIONS, engine=engine, **kwargs
    ) as ps:
        assert _ends(ps.scan(data)) == expected, (pattern, engine)


@pytest.mark.parametrize("pattern,data", CORPUS)
def test_anchored_corpus_fused_tiers_byte_identical(pattern, data):
    """Bitset, dense-table, and prefiltered stepping must agree on the
    gated automata (the tiers share the start-gate/finalisation logic)."""
    expected = oracle_ends(parse(pattern), data)
    bitset = PatternSet(
        [pattern],
        options=OPTIONS,
        engine="fused",
        budget=Budget(max_table_states=0),
        prefilter=False,
    )
    table = PatternSet(
        [pattern], options=OPTIONS, engine="fused", prefilter=False
    )
    prefiltered = PatternSet([pattern], options=OPTIONS, engine="fused")
    assert _ends(bitset.scan(data)) == expected
    assert _ends(table.scan(data)) == expected
    assert _ends(prefiltered.scan(data)) == expected


@pytest.mark.parametrize("pattern", IMPOSSIBLE)
@pytest.mark.parametrize("engine", ("nfa", "fused"))
def test_impossible_anchors_compile_to_empty_matcher(pattern, engine):
    with PatternSet([pattern], options=OPTIONS, engine=engine) as ps:
        assert ps.scan(b"ab ab xyz x yyy z ab") == []


# --- streaming: chunk cuts straddling offset 0 and end-of-input ---------


@pytest.mark.parametrize("chunk", (1, 2, 3, 7))
@pytest.mark.parametrize("engine", ENGINES)
def test_anchored_chunked_feed_plus_finish_equals_scan(engine, chunk):
    """Chunked ``feed`` + ``finish`` must reproduce ``scan`` exactly:
    the first cut lands right after offset 0 (the ^ gate must not
    re-arm) and the last cut severs the ``$`` candidates from their
    finalisation."""
    patterns = [pattern for pattern, _ in CORPUS]
    data = b" ".join(sample for _, sample in CORPUS)
    kwargs = {"shards": 2} if engine == "sharded" else {}
    with PatternSet(
        patterns, options=OPTIONS, engine=engine, **kwargs
    ) as ps:
        whole = ps.scan(data)
        assert whole  # the combined stream must exercise matches
        ps.reset()
        rebased = []
        base = 0
        for start in range(0, len(data), chunk):
            piece = data[start : start + chunk]
            for match in ps.feed(piece):
                rebased.append(Match(match.pattern_id, base + match.end))
            base += len(piece)
        rebased.extend(ps.finish())
        assert sorted(rebased, key=lambda m: (m.end, m.pattern_id)) == whole


@pytest.mark.parametrize("engine", ("fused", "sharded"))
def test_finish_is_idempotent_and_scan_resets(engine):
    patterns = ["c{3}$", "^ab"]
    kwargs = {"shards": 2} if engine == "sharded" else {}
    with PatternSet(
        patterns, options=OPTIONS, engine=engine, **kwargs
    ) as ps:
        first = ps.scan(b"ab ccc")
        assert [(m.pattern_id, m.end) for m in first] == [(1, 1), (0, 5)]
        # finish() after scan() reports the same end-of-input candidates
        # again without mutating state; a fresh scan is unaffected.
        assert [(m.pattern_id, m.end) for m in ps.finish()] == [(0, 5)]
        assert ps.scan(b"ab ccc") == first


# --- supervised recovery and chaos over the anchored rule set -----------


def _compile_corpus():
    return [
        compile_pattern(pattern, regex_id, OPTIONS)
        for regex_id, (pattern, _) in enumerate(CORPUS)
    ]


def _corpus_stream(copies=6):
    return b" ".join(sample for _, sample in CORPUS) * copies


def test_anchored_faultfree_chaos_run_is_lossless():
    """A chaos campaign with zero faults pins the supervised scanner's
    anchored steady state: the merged stream (including end-of-input
    finalisation) must be byte-identical to the fused oracle."""
    report = run_chaos(
        _compile_corpus(),
        _corpus_stream(),
        ChaosSpec(seed=1, num_faults=0, shards=2, chunk_bytes=64),
    )
    assert not report.diverged
    assert report.golden_matches == report.chaos_matches > 0
    assert report.restarts == report.failovers == report.degraded == 0


def test_anchored_kill_restart_chaos_byte_identical():
    report = run_chaos(
        _compile_corpus(),
        _corpus_stream(),
        ChaosSpec(
            seed=5,
            kinds=("kill",),
            num_faults=1,
            shards=2,
            chunk_bytes=64,
            max_restarts=2,
            checkpoint_chunks=2,
        ),
    )
    assert not report.diverged
    assert report.restarts == 1
    assert report.degraded == 0


def test_anchored_kill_failover_chaos_byte_identical():
    report = run_chaos(
        _compile_corpus(),
        _corpus_stream(),
        ChaosSpec(
            seed=5,
            kinds=("kill",),
            num_faults=1,
            shards=2,
            chunk_bytes=64,
            max_restarts=0,
            checkpoint_chunks=2,
        ),
    )
    assert not report.diverged
    assert report.failovers == 1
    assert report.degraded == 0


# --- differential fuzz: random anchored patterns vs the oracle and re ---

ANCHOR_PREFIXES = ("", "^", r"\b")
ANCHOR_SUFFIXES = ("", "$", r"\b")


def _random_anchored_patterns(count=30, seed=1234):
    """Random cores wrapped in random anchor combinations; combinations
    the compiler rejects (e.g. ``\\b`` beside a nullable core) are
    skipped — their rejection is pinned elsewhere."""
    rng = random.Random(seed)
    out = []
    while len(out) < count:
        core = str(random_regex(rng, alphabet=b"ab", depth=2, max_bound=4))
        pattern = (
            rng.choice(ANCHOR_PREFIXES) + core + rng.choice(ANCHOR_SUFFIXES)
        )
        try:
            compiled = compile_pattern(pattern, options=OPTIONS)
        except ValueError:
            continue
        out.append((pattern, compiled))
    return out


def test_anchored_differential_fuzz_oracle_and_re():
    rng = random.Random(99)
    patterns = _random_anchored_patterns()
    texts = [
        bytes(rng.choice(b"ab ") for _ in range(rng.randrange(0, 18)))
        for _ in range(12)
    ]
    for pattern, compiled in patterns:
        with PatternSet([pattern], options=OPTIONS, engine="fused") as ps:
            parsed = parse(pattern)
            for text in texts:
                got = _ends(ps.scan(text))
                # exact ends against the brute-force oracle
                assert got == oracle_ends(parsed, text), (pattern, text)
                # boolean agreement with re.search on non-empty matches
                # (the engines never report empty matches)
                re_hit = any(
                    m.end() > m.start()
                    for m in pyre.finditer(
                        pattern.encode("latin-1"), text
                    )
                )
                assert bool(got) == re_hit, (pattern, text)
