"""Unit tests for the fused multi-pattern scan engine."""

import pytest

from repro.automata.ah import is_counter_free, to_nfa
from repro.compiler import CompilerOptions, compile_pattern
from repro.compiler.pipeline import build_scan_nfa, build_unfolded_nfa
from repro.matching import Match, PatternSet, build_fused, fuse_patterns
from repro.matching.fused import FusedMatcher, fuse_nfas
from repro.matching.oracle import match_ends as oracle_ends

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)


def compile_all(patterns, options=OPTIONS):
    return [
        compile_pattern(p, regex_id, options)
        for regex_id, p in enumerate(patterns)
    ]


class TestFusion:
    def test_offsets_partition_the_state_space(self):
        fused = fuse_patterns(compile_all(["abc", "x{4}y", "(pq|rs)t"]))
        assert fused.num_patterns == 3
        assert fused.offsets[0] == 0
        assert sorted(set(fused.state_pattern)) == [0, 1, 2]
        # offsets are the cumulative per-pattern sizes
        for pattern_id in range(1, 3):
            lo = fused.offsets[pattern_id]
            assert fused.state_pattern[lo] == pattern_id
            assert fused.state_pattern[lo - 1] == pattern_id - 1

    def test_transitions_stay_within_owner(self):
        """Offset-remapping must never link two patterns' state spaces."""
        fused = fuse_patterns(compile_all(["ab{3}c", "xy", "a{2,}b"]))
        owners = fused.state_pattern
        for src, dsts in enumerate(fused.transitions):
            for dst in dsts:
                assert owners[src] == owners[dst]

    def test_report_map_points_at_owner(self):
        fused = fuse_patterns(compile_all(["ab", "cd"]))
        assert set(fused.finals.values()) == {0, 1}
        for state, pattern_id in fused.finals.items():
            assert fused.state_pattern[state] == pattern_id

    def test_sources_prefer_counter_free_ah_graph(self):
        fused = fuse_patterns(compile_all(["abc", "a.{6}b"]))
        assert fused.sources == ["ah", "unfolded"]

    def test_empty_pattern_set(self):
        matcher = FusedMatcher(fuse_nfas([]))
        assert matcher.scan(b"anything") == []
        assert matcher.active_count() == 0


class TestAHProjection:
    def test_counter_free_projection_matches_oracle(self):
        compiled = compile_pattern("a(b|c)d*e", options=OPTIONS)
        assert is_counter_free(compiled.ah)
        data = b"abde ace abdddde"
        assert to_nfa(compiled.ah).match_ends(data) == oracle_ends(
            compiled.parsed, data
        )

    def test_counting_automaton_rejected(self):
        compiled = compile_pattern("a{6}", options=OPTIONS)
        assert not is_counter_free(compiled.ah)
        with pytest.raises(ValueError):
            to_nfa(compiled.ah)

    def test_build_scan_nfa_falls_back_to_unfolding(self):
        compiled = compile_pattern("a{6}b", options=OPTIONS)
        nfa = build_scan_nfa(compiled)
        assert nfa.num_states == build_unfolded_nfa(compiled.parsed).num_states
        data = b"aaaaaab aaab"
        assert nfa.match_ends(data) == oracle_ends(compiled.parsed, data)


class TestFusedMatcher:
    def test_multi_pattern_report_ids_and_order(self):
        ps = PatternSet(["ab", "b", "a+b"], engine="fused")
        matches = ps.scan(b"aab")
        # all three end at offset 2, reported in pattern-id order
        assert matches == [Match(0, 2), Match(1, 2), Match(2, 2)]

    def test_step_matches_feed(self):
        compiled = compile_all(["ab{2,3}c", "ba"])
        stepper = build_fused(compiled)
        feeder = build_fused(compiled)
        data = b"abbc ba abbbc"
        expected = feeder.scan(data)
        stepper.reset()
        got = []
        for offset, symbol in enumerate(data):
            for pattern_id in stepper.step_report(symbol):
                got.append((pattern_id, offset))
        assert got == expected

    def test_streaming_state_persists_across_feeds(self):
        matcher = build_fused(compile_all(["ab{3}c"]))
        matcher.reset()
        assert matcher.feed(b"zab") == []
        assert matcher.feed(b"bbc") == [(0, 2)]  # chunk-relative end
        matcher.reset()
        assert matcher.feed(b"bbc") == []

    def test_active_count_tracks_occupancy(self):
        matcher = build_fused(compile_all(["ab", "ac"]))
        matcher.reset()
        assert matcher.active_count() == 0
        matcher.step(ord("a"))
        assert matcher.active_count() == 2  # both 'a' heads live
        assert matcher.active_states()

    def test_cache_amortizes_repeated_contexts(self):
        matcher = build_fused(compile_all(["ab"]))
        matcher.scan(b"abcabcabc")
        info = matcher.cache_info()
        assert info["hits"] + info["misses"] == 9
        assert info["hits"] >= 6  # only 3 distinct (state, byte) contexts

    def test_cache_stays_bounded(self):
        matcher = build_fused(compile_all(["ab"]), cache_size=2)
        matcher.scan(b"abcabcabc")
        info = matcher.cache_info()
        assert info["entries"] <= 2
        assert info["hits"] + info["misses"] == 9

    def test_cache_size_validated(self):
        with pytest.raises(ValueError):
            build_fused(compile_all(["ab"]), cache_size=0)

    def test_cached_and_uncached_agree(self):
        compiled = compile_all(["ab{2,4}c", "x(yz){2}", "q+r"])
        data = b"abbc xyzyz qqr abbbbc" * 3
        cold = build_fused(compiled, cache_size=1)  # ~no reuse
        warm = build_fused(compiled)
        assert cold.scan(data) == warm.scan(data)
        assert warm.scan(data) == warm.scan(data)  # warm rerun stable


class TestPatternSetIntegration:
    def test_engine_listed(self):
        from repro.matching import ENGINES

        assert "fused" in ENGINES

    def test_scan_resets_state(self):
        ps = PatternSet(["ab"], engine="fused")
        assert ps.scan(b"a") == []
        assert ps.scan(b"b") == []

    def test_matches_default_engine(self):
        patterns = ["ab{3}c", "x[0-9]{2}y", "zq"]
        data = b"abbbc x42y zq abbc x4y"
        fused = PatternSet(patterns, engine="fused").scan(data)
        default = PatternSet(patterns).scan(data)
        assert fused == default

    def test_telemetry_histogram_uses_fused_occupancy(self):
        from repro import telemetry

        with telemetry.session():
            ps = PatternSet(["ab", "ac"], engine="fused")
            ps.scan(b"aab")
            snap = telemetry.snapshot()
        occupancy = snap["histograms"]["engine.active_states"]
        assert occupancy["count"] == 3
        assert snap["counters"]["engine.fused.cache_misses"] > 0
