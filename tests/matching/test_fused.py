"""Unit tests for the fused multi-pattern scan engine."""

import random

import pytest

from repro.automata.ah import is_counter_free, to_nfa
from repro.compiler import CompilerOptions, compile_pattern
from repro.compiler.pipeline import build_scan_nfa, build_unfolded_nfa
from repro.matching import Match, PatternSet, build_fused, fuse_patterns
from repro.matching.fused import FusedMatcher, fuse_nfas
from repro.matching.oracle import match_ends as oracle_ends
from repro.resilience import Budget

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)


def compile_all(patterns, options=OPTIONS):
    return [
        compile_pattern(p, regex_id, options)
        for regex_id, p in enumerate(patterns)
    ]


class TestFusion:
    def test_offsets_partition_the_state_space(self):
        fused = fuse_patterns(compile_all(["abc", "x{4}y", "(pq|rs)t"]))
        assert fused.num_patterns == 3
        assert fused.offsets[0] == 0
        assert sorted(set(fused.state_pattern)) == [0, 1, 2]
        # offsets are the cumulative per-pattern sizes
        for pattern_id in range(1, 3):
            lo = fused.offsets[pattern_id]
            assert fused.state_pattern[lo] == pattern_id
            assert fused.state_pattern[lo - 1] == pattern_id - 1

    def test_transitions_stay_within_owner(self):
        """Offset-remapping must never link two patterns' state spaces."""
        fused = fuse_patterns(compile_all(["ab{3}c", "xy", "a{2,}b"]))
        owners = fused.state_pattern
        for src, dsts in enumerate(fused.transitions):
            for dst in dsts:
                assert owners[src] == owners[dst]

    def test_report_map_points_at_owner(self):
        fused = fuse_patterns(compile_all(["ab", "cd"]))
        assert set(fused.finals.values()) == {0, 1}
        for state, pattern_id in fused.finals.items():
            assert fused.state_pattern[state] == pattern_id

    def test_sources_prefer_counter_free_ah_graph(self):
        fused = fuse_patterns(compile_all(["abc", "a.{6}b"]))
        assert fused.sources == ["ah", "unfolded"]

    def test_empty_pattern_set(self):
        matcher = FusedMatcher(fuse_nfas([]))
        assert matcher.scan(b"anything") == []
        assert matcher.active_count() == 0


class TestAHProjection:
    def test_counter_free_projection_matches_oracle(self):
        compiled = compile_pattern("a(b|c)d*e", options=OPTIONS)
        assert is_counter_free(compiled.ah)
        data = b"abde ace abdddde"
        assert to_nfa(compiled.ah).match_ends(data) == oracle_ends(
            compiled.parsed, data
        )

    def test_counting_automaton_rejected(self):
        compiled = compile_pattern("a{6}", options=OPTIONS)
        assert not is_counter_free(compiled.ah)
        with pytest.raises(ValueError):
            to_nfa(compiled.ah)

    def test_build_scan_nfa_falls_back_to_unfolding(self):
        compiled = compile_pattern("a{6}b", options=OPTIONS)
        nfa = build_scan_nfa(compiled)
        assert nfa.num_states == build_unfolded_nfa(compiled.parsed).num_states
        data = b"aaaaaab aaab"
        assert nfa.match_ends(data) == oracle_ends(compiled.parsed, data)


class TestFusedMatcher:
    def test_multi_pattern_report_ids_and_order(self):
        ps = PatternSet(["ab", "b", "a+b"], engine="fused")
        matches = ps.scan(b"aab")
        # all three end at offset 2, reported in pattern-id order
        assert matches == [Match(0, 2), Match(1, 2), Match(2, 2)]

    def test_step_matches_feed(self):
        compiled = compile_all(["ab{2,3}c", "ba"])
        stepper = build_fused(compiled)
        feeder = build_fused(compiled)
        data = b"abbc ba abbbc"
        expected = feeder.scan(data)
        stepper.reset()
        got = []
        for offset, symbol in enumerate(data):
            for pattern_id in stepper.step_report(symbol):
                got.append((pattern_id, offset))
        assert got == expected

    def test_streaming_state_persists_across_feeds(self):
        matcher = build_fused(compile_all(["ab{3}c"]))
        matcher.reset()
        assert matcher.feed(b"zab") == []
        assert matcher.feed(b"bbc") == [(0, 2)]  # chunk-relative end
        matcher.reset()
        assert matcher.feed(b"bbc") == []

    def test_active_count_tracks_occupancy(self):
        matcher = build_fused(compile_all(["ab", "ac"]))
        matcher.reset()
        assert matcher.active_count() == 0
        matcher.step(ord("a"))
        assert matcher.active_count() == 2  # both 'a' heads live
        assert matcher.active_states()

    def test_cache_amortizes_repeated_contexts(self):
        # Pin the bitset tier: with the dense table on, the lazy cache
        # only sees row fills, not one probe per byte.
        matcher = build_fused(
            compile_all(["ab"]), table_states=0, prefilter=False
        )
        matcher.scan(b"abcabcabc")
        info = matcher.cache_info()
        assert info["hits"] + info["misses"] == 9
        assert info["hits"] >= 6  # only 3 distinct (state, byte) contexts

    def test_table_amortizes_repeated_contexts(self):
        # The table tier serves repeated contexts from dense rows: the
        # second period of the input is all table hits, no cache probes.
        matcher = build_fused(compile_all(["ab"]), prefilter=False)
        matcher.scan(b"abcabcabc")
        info = matcher.table_info()
        assert info["live"]
        assert info["hits"] + info["misses"] == 9
        assert info["hits"] >= 6
        assert info["promotes"] == info["states"]

    def test_cache_stays_bounded(self):
        matcher = build_fused(
            compile_all(["ab"]), cache_size=2, table_states=0, prefilter=False
        )
        matcher.scan(b"abcabcabc")
        info = matcher.cache_info()
        assert info["entries"] <= 2
        assert info["hits"] + info["misses"] == 9

    def test_cache_size_validated(self):
        with pytest.raises(ValueError):
            build_fused(compile_all(["ab"]), cache_size=0)

    def test_cached_and_uncached_agree(self):
        compiled = compile_all(["ab{2,4}c", "x(yz){2}", "q+r"])
        data = b"abbc xyzyz qqr abbbbc" * 3
        cold = build_fused(compiled, cache_size=1)  # ~no reuse
        warm = build_fused(compiled)
        assert cold.scan(data) == warm.scan(data)
        assert warm.scan(data) == warm.scan(data)  # warm rerun stable


class TestPatternSetIntegration:
    def test_engine_listed(self):
        from repro.matching import ENGINES

        assert "fused" in ENGINES

    def test_scan_resets_state(self):
        ps = PatternSet(["ab"], engine="fused")
        assert ps.scan(b"a") == []
        assert ps.scan(b"b") == []

    def test_matches_default_engine(self):
        patterns = ["ab{3}c", "x[0-9]{2}y", "zq"]
        data = b"abbbc x42y zq abbc x4y"
        fused = PatternSet(patterns, engine="fused").scan(data)
        default = PatternSet(patterns).scan(data)
        assert fused == default

    def test_telemetry_histogram_uses_fused_occupancy(self):
        from repro import telemetry

        with telemetry.session():
            ps = PatternSet(["ab", "ac"], engine="fused")
            ps.scan(b"aab")
            snap = telemetry.snapshot()
        occupancy = snap["histograms"]["engine.active_states"]
        assert occupancy["count"] == 3
        assert snap["counters"]["engine.fused.cache_misses"] > 0


class TestTableBlowup:
    """Satellite: a pathological set exceeding the table budget falls
    back to bitset stepping mid-scan — identical output, a telemetry
    counter bump and a flight event, never a budget error."""

    PATTERNS = ["a.{6}b", "c.{6}d"]  # sliding gaps: many distinct masks

    def _data(self):
        rng = random.Random(3)
        return bytes(rng.choice(b"acbdxyz") for _ in range(2000))

    def test_state_budget_blowup_identical_output(self):
        compiled = compile_all(self.PATTERNS)
        data = self._data()
        expected = build_fused(
            compiled, table_states=0, prefilter=False
        ).scan(data)
        assert expected  # the workload must actually match
        tight = build_fused(compiled, table_states=2, prefilter=False)
        assert tight.scan(data) == expected
        info = tight.table_info()
        assert not info["live"]
        assert info["fallbacks"] == 1
        assert info["steps_bitset"] > 0  # scan finished on the bitset tier
        # The fallback is permanent: later scans stay correct, no table.
        assert tight.scan(data) == expected
        assert tight.table_info()["fallbacks"] == 1

    def test_byte_budget_blowup_identical_output(self):
        compiled = compile_all(self.PATTERNS)
        data = self._data()
        expected = build_fused(
            compiled, table_states=0, prefilter=False
        ).scan(data)
        tight = build_fused(compiled, table_bytes=1, prefilter=False)
        assert tight.scan(data) == expected
        info = tight.table_info()
        assert not info["live"]
        assert info["fallbacks"] == 1

    def test_fallback_counter_and_flight_event(self):
        # Matcher-level: the tiers run inside FusedMatcher.feed (the
        # engine's metrics path steps per byte for the occupancy
        # histogram and never enters the table), so the counter and the
        # flight event are asserted where the blow-up actually happens.
        from repro import telemetry
        from repro.telemetry import flight

        compiled = compile_all(self.PATTERNS)
        data = self._data()
        expected = build_fused(
            compiled, table_states=0, prefilter=False
        ).scan(data)
        flight.disable()
        try:
            flight.enable()
            with telemetry.session():
                tight = build_fused(compiled, table_states=2, prefilter=False)
                matches = tight.scan(data)
                snap = telemetry.snapshot()
            assert snap["counters"]["scan.table.fallback"] >= 1
            events = [
                e
                for e in flight.recorder().events()
                if e["kind"] == "table_fallback"
            ]
            assert events
            assert events[0]["state_capacity"] == 2
        finally:
            flight.disable()
        assert matches == expected

    def test_blowup_is_not_a_budget_error(self):
        # on_error="raise" still must not see an error: the table budget
        # degrades the tier, it never rejects the scan.
        ps = PatternSet(
            self.PATTERNS,
            engine="fused",
            budget=Budget(max_table_states=1),
            on_error="raise",
        )
        assert ps.scan(self._data())  # no exception

    def test_table_states_zero_disables_table(self):
        matcher = build_fused(
            compile_all(self.PATTERNS), table_states=0, prefilter=False
        )
        matcher.scan(self._data())
        info = matcher.table_info()
        assert not info["live"]
        assert info["fallbacks"] == 0
        assert info["hits"] == info["misses"] == 0


class TestCacheBytes:
    """Satellite: the successor cache is bounded by estimated bytes,
    keyed on mask bit length, not just entry count."""

    def test_entry_bytes_scale_with_mask_width(self):
        from repro.matching.fused import entry_bytes

        narrow = entry_bytes(1 << 10, 1 << 10)
        wide = entry_bytes(1 << 100_000, 1 << 100_000)
        assert wide > narrow
        assert wide - narrow >= 2 * (100_000 - 10) // 8 - 16

    def test_cache_info_reports_bytes(self):
        matcher = build_fused(compile_all(["ab"]))
        matcher.scan(b"abcabc")
        info = matcher.cache_info()
        assert info["bytes"] > 0
        assert info["bytes"] <= info["byte_capacity"]
        assert info["entries"] * 100 < info["byte_capacity"]

    def test_byte_budget_evicts(self):
        from repro.matching.fused import entry_bytes

        # Room for roughly two narrow entries only.
        budget = entry_bytes(0, 0) * 2 + 10
        matcher = build_fused(compile_all(["ab"]), cache_bytes=budget)
        matcher.scan(b"abcabcabc" * 4)
        info = matcher.cache_info()
        assert info["bytes"] <= budget
        assert info["entries"] <= 3

    def test_byte_accounting_balances_after_evictions(self):
        from repro.matching.fused import entry_bytes

        matcher = build_fused(compile_all(["ab{3}c", "xy"]), cache_size=4)
        matcher.scan(b"abbbc xy zq abbc xbbz" * 3)
        info = matcher.cache_info()
        recomputed = sum(
            entry_bytes(key[0], value[0], len(value[1]))
            for key, value in matcher._cache.items()
        )
        assert info["bytes"] == recomputed

    def test_cache_bytes_validated(self):
        with pytest.raises(ValueError):
            build_fused(compile_all(["ab"]), cache_bytes=0)

    def test_results_unchanged_by_byte_pressure(self):
        compiled = compile_all(["ab{2,4}c", "x(yz){2}", "q+r"])
        data = b"abbc xyzyz qqr abbbbc" * 3
        tight = build_fused(compiled, cache_bytes=500)
        roomy = build_fused(compiled)
        assert tight.scan(data) == roomy.scan(data)

    def test_cache_full_flags_saturation(self):
        matcher = build_fused(compile_all(["ab"]), cache_size=2)
        assert not matcher.cache_full()
        matcher.scan(b"abcabcxyz")
        assert matcher.cache_full()

    def test_pattern_mask_selects_slice(self):
        fused = fuse_patterns(compile_all(["abc", "x{4}y"]))
        for pattern_id in range(fused.num_patterns):
            lo, hi = fused.pattern_slice(pattern_id)
            mask = fused.pattern_mask(pattern_id)
            assert mask == ((1 << (hi - lo)) - 1) << lo
        assert fused.pattern_mask(0) & fused.pattern_mask(1) == 0

    def test_nfas_retained_for_demotion(self):
        fused = fuse_patterns(compile_all(["abc", "x{4}y"]))
        assert len(fused.nfas) == 2
        lo, hi = fused.pattern_slice(1)
        assert fused.nfas[1].num_states == hi - lo
