"""The compile-time literal prefilter: extraction pins and the
never-drop-a-match property.

The extractor's contract is *soundness*, not completeness: when
``extract_literals`` returns hints, **every** match of the pattern must
contain one of the hint literals starting at most ``pre`` bytes after
the match start.  Patterns with no usable literal return ``None`` and
the engine keeps their start states always armed, so an extractor that
returns ``None`` too often only costs speed — one that over-claims
loses matches.  The Hypothesis suites below attack both layers: the
extraction contract directly (via ``random_match``) and the fused
engine end to end (prefiltered vs pure-bitset scan of the same rules).
"""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions, compile_pattern
from repro.compiler.prefilter import (
    LiteralHint,
    PatternLiterals,
    extract_literals,
    max_match_len,
)
from repro.matching import build_fused
from repro.regex.generate import random_match, random_regex
from repro.regex.parser import parse
from repro.workloads import PROFILES, dataset_stream, generate_pattern

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)


def hints_of(pattern):
    literals = extract_literals(parse(pattern))
    if literals is None:
        return None
    return {(hint.literal, hint.pre) for hint in literals.hints}


class TestExtractionPins:
    def test_plain_literal(self):
        assert hints_of("needle") == {(b"needle", 0)}

    def test_exact_join_through_bounded_repeat(self):
        # b{3} is exact, so the whole concat joins into one literal.
        assert hints_of("ab{3}c") == {(b"abbbc", 0)}

    def test_literal_under_zero_lower_bound_not_required(self):
        """The pin: a literal under ``{0,n}`` (or ``*`` / ``?``) occurs
        in *some* matches, not all — it must never become a hint."""
        assert hints_of("(needle){0,3}") is None
        # With a required suffix the repeat expands exactly: "needle"
        # alone is never a hint, but the unrolled forms (which every
        # match IS one of) are.
        hints = hints_of("(needle){0,3}zz")
        assert (b"zz", 0) in hints
        assert (b"needle", 0) not in hints

    def test_star_prefix_blocks_shifting(self):
        # Unbounded prefix: the suffix literal's offset is unbounded, so
        # no arming window exists and the pattern stays always-on.
        assert hints_of(".*needle") is None
        assert hints_of("a*needle") is None

    def test_nullable_pattern_has_no_requirement(self):
        assert hints_of("(abc)?") is None
        assert hints_of("x*") is None

    def test_alternation_requires_union_of_both_sides(self):
        assert hints_of("needle|haystack") == {(b"needle", 0), (b"haystack", 0)}

    def test_alternation_with_nullable_side_is_unfiltered(self):
        assert hints_of("needle|x*") is None

    def test_small_charclass_expands(self):
        assert hints_of("[ab]cde") == {(b"acde", 0), (b"bcde", 0)}

    def test_wide_charclass_shifts_suffix(self):
        # [0-9] is too wide to expand; a suffix literal arms with a
        # window covering the class bytes instead.
        ((literal, pre),) = hints_of("[0-9]cde")
        assert literal in (b"cde", b"de")
        assert pre + len(literal) <= 4  # within every 4-byte match

    def test_optional_head_keeps_both_forms(self):
        assert hints_of("a?bcd") == {(b"abcd", 0), (b"bcd", 0)}

    def test_plus_requires_one_copy(self):
        hints = hints_of("(abc)+x")
        assert hints is not None
        assert any(literal.startswith(b"abc") for literal, _ in hints)

    def test_long_literal_truncated_to_prefix(self):
        hints = hints_of("a" * 64 + "b")
        assert hints is not None
        ((literal, pre),) = hints
        assert len(literal) <= 16 and pre == 0

    def test_max_match_len(self):
        assert max_match_len(parse("abc")) == 3
        assert max_match_len(parse("a{2,5}")) == 5
        assert max_match_len(parse("a*")) is None
        assert max_match_len(parse("(ab){3}c?")) == 7

    def test_hints_are_picklable(self):
        import pickle

        literals = extract_literals(parse("ab{3}c|xyz"))
        clone = pickle.loads(pickle.dumps(literals))
        assert clone == literals
        assert isinstance(clone, PatternLiterals)
        assert all(isinstance(h, LiteralHint) for h in clone.hints)


class TestCompiledIntegration:
    def test_compiled_regex_carries_literals(self):
        compiled = compile_pattern("needle", options=OPTIONS)
        assert compiled.literals is not None
        assert compiled.literals.hints[0].literal == b"needle"

    def test_unfilterable_pattern_compiles_without_literals(self):
        compiled = compile_pattern(".*ab", options=OPTIONS)
        assert compiled.literals is None

    def test_compile_cache_roundtrips_literals(self, tmp_path):
        from repro.compiler.cache import CompileCache
        from repro.compiler.pipeline import compile_ruleset

        patterns = ["needle", "ab{3}c", ".*x"]
        cache = CompileCache(cache_dir=str(tmp_path))
        cold = compile_ruleset(patterns, OPTIONS, cache=cache)
        # Fresh in-memory layer: force the disk pickles to be loaded.
        warm = compile_ruleset(
            patterns, OPTIONS, cache=CompileCache(cache_dir=str(tmp_path))
        )
        for before, after in zip(cold.regexes, warm.regexes):
            assert before.literals == after.literals

    def test_unfiltered_patterns_stay_always_on(self):
        compiled = [
            compile_pattern(p, i, OPTIONS)
            for i, p in enumerate(["needle", ".*rror"])
        ]
        matcher = build_fused(compiled)
        info = matcher.prefilter_info()
        assert info is not None
        assert info["gated_patterns"] == 1
        assert info["open_patterns"] == 1
        assert info["literals"] == [{"literal": "needle", "pre": 0}]
        # The always-on pattern keeps matching inside unarmed gaps.
        assert matcher.scan(b"zz error zz needle") == [(1, 7), (0, 17)]


# --- extraction soundness: every match contains a hint in-window --------


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    seed=st.integers(min_value=0, max_value=50_000),
    sample_seed=st.integers(min_value=0, max_value=1_000),
)
def test_every_match_contains_a_hint_in_window(seed, sample_seed):
    node = random_regex(
        random.Random(seed), alphabet=b"abcd", depth=3, max_bound=6
    )
    literals = extract_literals(node)
    assume(literals is not None)
    rng = random.Random(sample_seed)
    for _ in range(5):
        try:
            match = random_match(node, rng, 3)
        except ValueError:
            return
        assert any(
            match.find(hint.literal, 0, hint.pre + len(hint.literal)) != -1
            for hint in literals.hints
        ), (str(node), match, literals.hints)


# --- end-to-end: prefiltered engine never drops (or invents) a match ----


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    name=st.sampled_from(sorted(PROFILES)),
    seed=st.integers(min_value=0, max_value=5_000),
    stream_seed=st.integers(min_value=0, max_value=1_000),
    chunk=st.integers(min_value=1, max_value=17),
)
def test_prefiltered_stream_identical_to_bitset(name, seed, stream_seed, chunk):
    profile = PROFILES[name]
    rng = random.Random(seed)
    patterns = [generate_pattern(rng, profile) for _ in range(3)]
    compiled = [
        compile_pattern(p, i, OPTIONS) for i, p in enumerate(patterns)
    ]
    stream = dataset_stream(
        patterns,
        random.Random(stream_seed),
        200,
        profile.literal_pool,
        plant_rate=0.03,
    )
    expected = build_fused(compiled, table_states=0, prefilter=False).scan(
        stream
    )
    prefiltered = build_fused(compiled)
    assert prefiltered.scan(stream) == expected
    # Same rules, chunked feeds: boundaries land inside arming windows.
    prefiltered.reset()
    got = []
    for start in range(0, len(stream), chunk):
        for slot, end in prefiltered.feed(stream[start:start + chunk]):
            got.append((slot, start + end))
    assert got == expected
