"""Streaming equivalence: chunked ``feed`` must equal one-shot ``scan``.

For every engine (including ``fused``), splitting an input at arbitrary
chunk boundaries and feeding the pieces must yield the identical match
stream to a single scan — ``feed`` reports chunk-relative end offsets,
so the property rebases each chunk's matches by the bytes already fed.
Chunk boundaries are Hypothesis-generated, so counting blocks are cut
mid-repetition in every imaginable way.
"""

import functools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions
from repro.matching import ENGINES, Match, PatternSet
from repro.regex.generate import random_regex

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)

#: Mixed shapes: unfolded literals, bounded ranges, at-least counting,
#: alternation over a counted group — all over a tiny shared alphabet so
#: random streams actually exercise partially-advanced counters.
PATTERNS = ["ab{2,4}c", "a(ba){2}", "c{3,}", "(a|b){4}c", "bc"]


def build_set(engine, patterns):
    # Two shards forces the sharded engine's cross-worker merge even on
    # a single-CPU machine; the other engines take no extra knobs.
    kwargs = {"shards": 2} if engine == "sharded" else {}
    return PatternSet(patterns, options=OPTIONS, engine=engine, **kwargs)


#: One compiled set per engine, shared across Hypothesis examples (the
#: property only touches runtime state, which scan/reset rewind).
SETS = {engine: build_set(engine, PATTERNS) for engine in ENGINES}


#: The anchored axis: start gates, deferred $ finals, and \b confirm
#: bytes must all survive arbitrary chunk cuts.  The alphabet includes a
#: space so \b boundaries occur mid-stream, not just at the edges.
ANCHORED_PATTERNS = ["^ab{2,4}c", "c{3,}$", r"\bab", "^(a|b){2}c$", "bc"]

ANCHORED_SETS = {
    engine: build_set(engine, ANCHORED_PATTERNS) for engine in ENGINES
}


def teardown_module(module):
    for pattern_set in SETS.values():
        pattern_set.close()
    for pattern_set in ANCHORED_SETS.values():
        pattern_set.close()
    for sets in list(_random_sets_cache.values()):
        for pattern_set in sets.values():
            pattern_set.close()
    _random_sets_cache.clear()


def chunked(stream, cuts):
    bounds = [0] + sorted(cuts) + [len(stream)]
    return [stream[lo:hi] for lo, hi in zip(bounds, bounds[1:])]


@pytest.mark.parametrize("engine", ENGINES)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_chunked_feed_equals_scan(engine, data):
    stream = bytes(
        data.draw(
            st.lists(
                st.sampled_from(list(b"abcx")), min_size=0, max_size=60
            ),
            label="stream",
        )
    )
    cuts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(stream)), max_size=6
        ),
        label="cuts",
    )
    pattern_set = SETS[engine]
    whole = pattern_set.scan(stream)

    pattern_set.reset()
    rebased = []
    base = 0
    for chunk in chunked(stream, cuts):
        for match in pattern_set.feed(chunk):
            rebased.append(Match(match.pattern_id, base + match.end))
        base += len(chunk)
    assert rebased == whole


@pytest.mark.parametrize("engine", ENGINES)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_anchored_chunked_feed_equals_scan(engine, data):
    """The anchored variant must also call ``finish``: ``$`` candidates
    are deferred until end-of-input, so the chunked side is only
    complete after finalisation (which ``scan`` performs internally)."""
    stream = bytes(
        data.draw(
            st.lists(
                st.sampled_from(list(b"abc x")), min_size=0, max_size=60
            ),
            label="stream",
        )
    )
    cuts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(stream)), max_size=6
        ),
        label="cuts",
    )
    pattern_set = ANCHORED_SETS[engine]
    whole = pattern_set.scan(stream)

    pattern_set.reset()
    rebased = []
    base = 0
    for chunk in chunked(stream, cuts):
        for match in pattern_set.feed(chunk):
            rebased.append(Match(match.pattern_id, base + match.end))
        base += len(chunk)
    rebased.extend(pattern_set.finish())
    assert sorted(rebased, key=lambda m: (m.end, m.pattern_id)) == whole


@pytest.mark.parametrize("engine", ENGINES)
def test_byte_at_a_time_feed(engine):
    """The degenerate chunking: every byte its own feed call."""
    stream = b"abbcc abbbbc a ba ba cccc"
    pattern_set = SETS[engine]
    whole = pattern_set.scan(stream)
    pattern_set.reset()
    rebased = [
        Match(match.pattern_id, offset)
        for offset in range(len(stream))
        for match in pattern_set.feed(stream[offset : offset + 1])
    ]
    assert rebased == whole


# --- random regexes × random inputs × random chunkings ----------------
#
# The fixed-pattern property above pins the regex shapes; this one draws
# them too.  Pattern sets are compiled once per seed and cached (the
# sharded sets hold worker processes, so rebuilding per example would
# dominate the run), while the stream and the chunk boundaries shrink
# freely — a failure minimises to the smallest (seed, stream, cuts)
# triple that breaks feed-across-splits == one-shot scan.

_random_sets_cache = {}


@functools.lru_cache(maxsize=None)
def _random_patterns(seed):
    rng = random.Random(seed)
    patterns = []
    while len(patterns) < 3:
        node = random_regex(rng, alphabet=b"ab", depth=2, max_bound=6)
        pattern = str(node)
        try:
            PatternSet([pattern], options=OPTIONS, engine="nfa")
        except ValueError:
            continue  # un-round-trippable or over the unfold budget
        patterns.append(pattern)
    return tuple(patterns)


def _random_sets(seed):
    if seed not in _random_sets_cache:
        patterns = list(_random_patterns(seed))
        _random_sets_cache[seed] = {
            engine: build_set(engine, patterns) for engine in ENGINES
        }
    return _random_sets_cache[seed]


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=7),
    engine=st.sampled_from(ENGINES),
    data=st.data(),
)
def test_random_regex_chunked_feed_equals_scan(seed, engine, data):
    stream = bytes(
        data.draw(
            st.lists(
                st.sampled_from(list(b"abx")), min_size=0, max_size=48
            ),
            label="stream",
        )
    )
    cuts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(stream)), max_size=5
        ),
        label="cuts",
    )
    pattern_set = _random_sets(seed)[engine]
    whole = pattern_set.scan(stream)

    pattern_set.reset()
    rebased = []
    base = 0
    for chunk in chunked(stream, cuts):
        for match in pattern_set.feed(chunk):
            rebased.append(Match(match.pattern_id, base + match.end))
        base += len(chunk)
    assert rebased == whole, (_random_patterns(seed), engine)
