"""Streaming equivalence: chunked ``feed`` must equal one-shot ``scan``.

For every engine (including ``fused``), splitting an input at arbitrary
chunk boundaries and feeding the pieces must yield the identical match
stream to a single scan — ``feed`` reports chunk-relative end offsets,
so the property rebases each chunk's matches by the bytes already fed.
Chunk boundaries are Hypothesis-generated, so counting blocks are cut
mid-repetition in every imaginable way.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import CompilerOptions
from repro.matching import ENGINES, Match, PatternSet

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)

#: Mixed shapes: unfolded literals, bounded ranges, at-least counting,
#: alternation over a counted group — all over a tiny shared alphabet so
#: random streams actually exercise partially-advanced counters.
PATTERNS = ["ab{2,4}c", "a(ba){2}", "c{3,}", "(a|b){4}c", "bc"]

#: One compiled set per engine, shared across Hypothesis examples (the
#: property only touches runtime state, which scan/reset rewind).
SETS = {
    engine: PatternSet(PATTERNS, options=OPTIONS, engine=engine)
    for engine in ENGINES
}


def chunked(stream, cuts):
    bounds = [0] + sorted(cuts) + [len(stream)]
    return [stream[lo:hi] for lo, hi in zip(bounds, bounds[1:])]


@pytest.mark.parametrize("engine", ENGINES)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_chunked_feed_equals_scan(engine, data):
    stream = bytes(
        data.draw(
            st.lists(
                st.sampled_from(list(b"abcx")), min_size=0, max_size=60
            ),
            label="stream",
        )
    )
    cuts = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(stream)), max_size=6
        ),
        label="cuts",
    )
    pattern_set = SETS[engine]
    whole = pattern_set.scan(stream)

    pattern_set.reset()
    rebased = []
    base = 0
    for chunk in chunked(stream, cuts):
        for match in pattern_set.feed(chunk):
            rebased.append(Match(match.pattern_id, base + match.end))
        base += len(chunk)
    assert rebased == whole


@pytest.mark.parametrize("engine", ENGINES)
def test_byte_at_a_time_feed(engine):
    """The degenerate chunking: every byte its own feed call."""
    stream = b"abbcc abbbbc a ba ba cccc"
    pattern_set = SETS[engine]
    whole = pattern_set.scan(stream)
    pattern_set.reset()
    rebased = [
        Match(match.pattern_id, offset)
        for offset in range(len(stream))
        for match in pattern_set.feed(stream[offset : offset + 1])
    ]
    assert rebased == whole
