"""The bench harness itself: record shape, tripwires, serialisation.

Tiny workloads only — these tests pin the *structure* of the perf
records (``benchmarks/bench_scan.py`` consumes them) and the built-in
differential tripwires, not any timing figure.
"""

import pytest

from repro.matching import ENGINES
from repro.matching.bench import (
    FUSED_VARIANTS,
    bench_cell,
    bench_grid,
    bench_match_rates,
    bench_workloads,
    format_grid,
    read_record,
    time_engine,
    write_record,
)

PATTERNS = ["ab{2,4}c", "bc"]
DATA = b"abbc bc abbbc " * 20


def test_time_engine_reports_matches_and_throughput():
    timing = time_engine(PATTERNS, DATA, "fused", repeats=1)
    assert timing.engine == "fused"
    assert timing.matches > 0
    assert timing.input_bytes == len(DATA)
    assert timing.throughput_mbps > 0
    assert set(timing.to_dict()) == {
        "engine",
        "seconds",
        "matches",
        "throughput_mbps",
    }


def test_time_engine_sharded_tears_down_workers():
    timing = time_engine(PATTERNS, DATA, "sharded", repeats=1, shards=2)
    fused = time_engine(PATTERNS, DATA, "fused", repeats=1)
    assert timing.matches == fused.matches


def test_bench_cell_flags_engine_disagreement():
    cell = bench_cell(PATTERNS, DATA, ["nfa", "fused"], repeats=1)
    assert cell["timings"]["fused"]["matches"] == cell["timings"]["nfa"]["matches"]
    assert "fused_speedup" in cell


def test_bench_grid_record_shape(tmp_path):
    record = bench_grid(
        pattern_counts=(1, 2),
        input_sizes=(512,),
        engines=["nfa", "fused"],
        repeats=1,
        shard_counts=(1, 2),
    )
    assert record["benchmark"] == "fused_scan"
    assert len(record["grid"]) == 2
    assert "fused_speedup_max_patterns" in record
    scaling = record["shard_scaling"]
    assert [row["shards"] for row in scaling["shards"]] == [1, 2]

    table = format_grid(record)
    assert "shard scaling" in table
    assert "workers" in table

    path = tmp_path / "record.json"
    write_record(record, str(path))
    assert read_record(str(path)) == record


def test_read_record_missing_file_is_none(tmp_path):
    assert read_record(str(tmp_path / "nope.json")) is None


def test_all_engines_registered_for_bench():
    assert "sharded" in ENGINES
    with pytest.raises(ValueError):
        bench_cell(PATTERNS, DATA, ["fused", "__nope__"], repeats=1)


def test_time_engine_variant_knobs_keep_matches():
    """``table_states``/``prefilter`` change the stepping tier, never
    the match stream — the knobs the match-rate axis is built on."""
    default = time_engine(PATTERNS, DATA, "fused", repeats=1)
    bitset = time_engine(
        PATTERNS, DATA, "fused", repeats=1, table_states=0, prefilter=False
    )
    assert bitset.matches == default.matches


def test_bench_match_rates_cell_shape():
    cells = bench_match_rates(
        num_patterns=2, input_size=2048, rates=(0.0, 0.5), repeats=1
    )
    assert [cell["match_rate"] for cell in cells] == [0.0, 0.5]
    for cell in cells:
        assert set(cell["timings"]) == set(FUSED_VARIANTS)
        assert cell["num_patterns"] == 2
        assert cell["input_bytes"] > 0
        assert "provenance" in cell
        assert cell["table_speedup"] > 0
        assert cell["prefilter_speedup"] > 0
    # The 0%-rate stream plants nothing; the 50% stream must match.
    assert cells[1]["matches"] > cells[0]["matches"]


def test_bench_workloads_cell_shape():
    """The anchored per-record workload cells: every fused tier timed,
    streams compared, speedups quoted against bitset stepping."""
    cells = bench_workloads(
        profiles=("ids",), num_records=64, match_rates=(0.0, 0.5), repeats=1
    )
    assert [cell["match_rate"] for cell in cells] == [0.0, 0.5]
    for cell in cells:
        assert cell["workload"] == "ids"
        assert set(cell["timings"]) == set(FUSED_VARIANTS)
        assert cell["records"] == 64
        assert cell["input_bytes"] > 0
        assert "provenance" in cell
        assert cell["table_speedup"] > 0
        assert cell["prefilter_speedup"] > 0
    # 0% record match rate means a fully silent anchored ruleset.
    assert cells[0]["matches"] == 0
    assert cells[1]["matches"] > 0


def test_bench_grid_match_rate_headlines():
    record = bench_grid(
        pattern_counts=(2,),
        input_sizes=(1024,),
        engines=["fused"],
        repeats=1,
        match_rates=(0.0, 0.5),
    )
    cells = record["match_rate_grid"]
    assert [cell["match_rate"] for cell in cells] == [0.0, 0.5]
    assert record["table_speedup_low_match"] == cells[0]["table_speedup"]
    assert (
        record["prefilter_speedup_zero_match"]
        == cells[0]["prefilter_speedup"]
    )
    table = format_grid(record)
    assert "match-rate axis" in table
    assert "prefilter" in table


def test_provenance_stamped_into_cells_and_record():
    from repro.matching.bench import provenance

    cell = bench_cell(PATTERNS, DATA, ["nfa", "fused"], repeats=1)
    prov = cell["provenance"]
    assert set(prov) == {"git_revision", "cpus", "python", "load_avg_1m"}
    assert prov["cpus"] >= 1
    assert prov["python"][0].isdigit()
    record = bench_grid(
        pattern_counts=(1,),
        input_sizes=(256,),
        engines=["nfa", "fused"],
        repeats=1,
        shard_counts=(1,),
    )
    assert record["provenance"]["python"] == prov["python"]
    assert all("provenance" in c for c in record["grid"])


def test_bench_reduction_cell_shape():
    from repro.compiler import CompilerOptions
    from repro.matching.bench import bench_reduction, format_grid

    cell = bench_reduction(num_patterns=4, input_size=4096, repeats=1)
    assert set(cell) >= {
        "num_patterns",
        "input_bytes",
        "reduce_level",
        "matches",
        "reduced",
        "unreduced",
        "state_reduction",
        "provenance",
    }
    for variant in (cell["reduced"], cell["unreduced"]):
        assert set(variant) == {
            "seconds",
            "throughput_mbps",
            "fused_states",
            "stes",
            "bv_stes",
        }
    assert cell["reduce_level"] > 0
    assert cell["reduced"]["fused_states"] <= cell["unreduced"]["fused_states"]
    assert 0.0 <= cell["state_reduction"] < 1.0

    with pytest.raises(ValueError):
        bench_reduction(
            num_patterns=2, input_size=256, repeats=1,
            options=CompilerOptions(reduce_level=0),
        )

    text = format_grid({
        "profile": "x", "seed": 0, "repeats": 1, "engines": [],
        "baseline_engine": "nfa", "grid": [], "reduction": cell,
    })
    assert "reduction —" in text
    assert "fewer" in text


def test_bench_recovery_cell_shape():
    from repro.matching.bench import bench_recovery, format_grid

    cell = bench_recovery(
        PATTERNS, DATA * 4, shards=2, chunk_bytes=128,
        checkpoint_chunks=2, repeats=1,
    )
    assert cell["restarts"] == 1
    assert cell["replayed_bytes"] > 0
    assert cell["clean_s"] > 0
    assert cell["faulted_s"] > 0
    assert cell["recovery_overhead_s"] >= 0
    assert cell["matches"] > 0
    text = format_grid({
        "profile": "x", "seed": 0, "repeats": 1, "engines": [],
        "baseline_engine": "nfa", "grid": [], "recovery": cell,
    })
    assert "recovery —" in text
    assert "bytes replayed" in text
