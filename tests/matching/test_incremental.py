"""Incremental PatternSet updates: add/remove without full recompilation.

The contract under test is *byte identity*: after any sequence of
``add_patterns`` / ``remove_patterns`` calls, the match stream must be
indistinguishable from a ``PatternSet`` built from scratch over the same
surviving patterns with the same ids.
"""

import pytest

from repro.compiler import CompilerOptions
from repro.matching import ENGINES, PatternSet

OPTIONS = CompilerOptions(bv_size=16, unfold_threshold=2)

#: Pattern pool drawn from the golden-corpus shapes.
POOL = [
    "GET /[a-z]{4,12}",
    "aa(bb|cc){3}dd",
    "[0-9a-f]{8}",
    "x{4,}y",
    "C.{2,4}C.{3}H",
    "[a-z]+@[a-z]{2,8}\\.com",
    "\\d{3}-\\d{4}",
    "a(b?c){2,5}d",
    "b{17}",
    "xa{0,5}y",
]

DATA = (
    b"GET /admin aabbccbbdd deadbeef xxxxy CaaCxyzH bob@mail.com "
    b"555-1234 abcbccd " + b"b" * 20 + b" xaaay xy"
)

INCREMENTAL_ENGINES = [e for e in ENGINES if e in ("fused", "sharded")] + [
    e for e in ENGINES if e not in ("fused", "sharded")
]


def stream(ps, data=DATA):
    return [(m.pattern_id, m.end) for m in ps.scan(data)]


def fresh(patterns, engine, **kwargs):
    return PatternSet(patterns, options=OPTIONS, engine=engine, **kwargs)


@pytest.mark.parametrize("engine", ENGINES)
class TestAddPatterns:
    def test_add_matches_from_scratch(self, engine):
        ps = fresh(POOL[:4], engine)
        try:
            ids = ps.add_patterns(POOL[4:7])
            assert ids == [4, 5, 6]
            expected = fresh(POOL[:7], engine)
            try:
                assert stream(ps) == stream(expected)
            finally:
                expected.close()
        finally:
            ps.close()

    def test_add_to_empty_set(self, engine):
        ps = fresh([], engine)
        try:
            assert ps.add_patterns(POOL[:3]) == [0, 1, 2]
            expected = fresh(POOL[:3], engine)
            try:
                assert stream(ps) == stream(expected)
            finally:
                expected.close()
        finally:
            ps.close()

    def test_repeated_adds(self, engine):
        ps = fresh(POOL[:2], engine)
        try:
            ps.add_patterns(POOL[2:5])
            ps.add_patterns(POOL[5:8])
            expected = fresh(POOL[:8], engine)
            try:
                assert stream(ps) == stream(expected)
            finally:
                expected.close()
        finally:
            ps.close()


@pytest.mark.parametrize("engine", ENGINES)
class TestRemovePatterns:
    def test_remove_matches_from_scratch(self, engine):
        ps = fresh(POOL[:6], engine)
        try:
            ps.remove_patterns([1, 4])
            survivors = fresh(
                [POOL[0], POOL[2], POOL[3], POOL[5]], engine
            )
            try:
                survivor_stream = stream(survivors)
                # Re-badge from-scratch ids back to the original ids.
                id_map = {0: 0, 1: 2, 2: 3, 3: 5}
                expected = [(id_map[pid], end) for pid, end in survivor_stream]
                assert sorted(stream(ps)) == sorted(expected)
            finally:
                survivors.close()
        finally:
            ps.close()

    def test_remove_then_add(self, engine):
        ps = fresh(POOL[:4], engine)
        try:
            ps.remove_patterns([0, 2])
            ids = ps.add_patterns(POOL[4:6])
            assert ids == [4, 5]  # ids never recycled
            got = stream(ps)
            expected_ids = {1, 3, 4, 5}
            assert {pid for pid, _ in got} <= expected_ids
            reference = fresh([POOL[1], POOL[3], POOL[4], POOL[5]], engine)
            try:
                id_map = {0: 1, 1: 3, 2: 4, 3: 5}
                expected = [
                    (id_map[pid], end) for pid, end in stream(reference)
                ]
                assert sorted(got) == sorted(expected)
            finally:
                reference.close()
        finally:
            ps.close()

    def test_remove_unknown_id_raises(self, engine):
        ps = fresh(POOL[:2], engine)
        try:
            with pytest.raises(ValueError):
                ps.remove_patterns([9])
        finally:
            ps.close()

    def test_remove_all(self, engine):
        ps = fresh(POOL[:3], engine)
        try:
            ps.remove_patterns([0, 1, 2])
            assert stream(ps) == []
        finally:
            ps.close()


class TestStreamingStatePreserved:
    """Fused adds/removes must not disturb in-flight activation.

    (The sharded engine restarts only the *touched* shards from empty
    activation; untouched shards keep theirs — covered below.)
    """

    def test_add_mid_stream_keeps_partial_match(self):
        ps = fresh(["ab{3}c"], "fused")
        try:
            ps.reset()
            assert ps.feed(b"ab") == []  # partial match in flight
            ps.add_patterns(["xy"])
            got = [(m.pattern_id, m.end) for m in ps.feed(b"bbc xy")]
            assert (0, 2) in got  # 'abbbc' completes across the add
            assert (1, 5) in got  # the added pattern matches too
        finally:
            ps.close()

    def test_remove_mid_stream_keeps_other_activation(self):
        ps = fresh(["ab{3}c", "zq"], "fused")
        try:
            ps.reset()
            assert ps.feed(b"ab") == []
            ps.remove_patterns([1])
            got = ps.feed(b"bbc")
            assert [(m.pattern_id, m.end) for m in got] == [(0, 2)]
        finally:
            ps.close()

    def test_sharded_untouched_shard_keeps_activation(self):
        # shards=2 splits the two patterns; adding a third touches only
        # one shard, so the other's in-flight 'de' activation survives.
        ps = fresh(["ab{3}c", "de{3}f"], "sharded", shards=2)
        try:
            ps.reset()
            assert ps.feed(b"ab de") == []
            ps.add_patterns(["xy"])
            got = [(m.pattern_id, m.end) for m in ps.feed(b"eef xy")]
            assert (1, 2) in got  # 'deeef' completes across the add
            assert (2, 5) in got  # the added pattern matches too
        finally:
            ps.close()


class TestQuarantineInterplay:
    def test_add_quarantines_bad_patterns(self):
        ps = PatternSet(
            ["ab", "bad(", "cd"],
            options=OPTIONS,
            engine="fused",
            on_error="quarantine",
        )
        try:
            ids = ps.add_patterns(["e**", "fg"])
            assert ids == [3, 4]  # quarantined adds still consume ids
            assert sorted(ps.quarantined) == [1, 3]
            got = stream(ps, b"ab cd fg")
            assert got == [(0, 1), (2, 4), (4, 7)]
        finally:
            ps.close()

    def test_remove_quarantined_id_drops_report(self):
        ps = PatternSet(
            ["ab", "bad("],
            options=OPTIONS,
            engine="fused",
            on_error="quarantine",
        )
        try:
            ps.remove_patterns([1])
            assert ps.quarantined == {}
            assert stream(ps, b"ab") == [(0, 1)]
        finally:
            ps.close()


class TestShardedIncrementalTopology:
    """Shard count bookkeeping across adds and removes."""

    def test_add_with_multiple_shards(self):
        ps = fresh(POOL[:4], "sharded", shards=2)
        try:
            ps.add_patterns(POOL[4:6])
            expected = fresh(POOL[:6], "sharded", shards=2)
            try:
                assert stream(ps) == stream(expected)
            finally:
                expected.close()
        finally:
            ps.close()

    def test_remove_can_retire_a_shard(self):
        ps = fresh(POOL[:4], "sharded", shards=2)
        try:
            ps.remove_patterns([0, 1, 2])
            reference = fresh([POOL[3]], "sharded", shards=1)
            try:
                expected = [(3, end) for _pid, end in stream(reference)]
                assert stream(ps) == expected
            finally:
                reference.close()
        finally:
            ps.close()
