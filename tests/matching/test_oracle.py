"""Brute-force oracle tests, cross-checked against Python's ``re``."""

import re

import pytest

from repro.matching.oracle import match_ends, match_spans
from repro.regex.parser import parse


class TestSpans:
    def test_epsilon_spans(self):
        spans = match_spans(parse("a*"), b"bb")
        assert (0, 0) in spans and (2, 2) in spans

    def test_symbol(self):
        assert match_spans(parse("a"), b"aba") == {(0, 1), (2, 3)}

    def test_concat(self):
        assert (0, 2) in match_spans(parse("ab"), b"ab")

    def test_alternation(self):
        spans = match_spans(parse("a|bb"), b"abb")
        assert (0, 1) in spans and (1, 3) in spans

    def test_star_closure(self):
        spans = match_spans(parse("(ab)*"), b"abab")
        assert (0, 4) in spans and (0, 2) in spans and (1, 1) in spans

    def test_repeat_bounds(self):
        spans = match_spans(parse("a{2,3}"), b"aaaa")
        lengths = {j - i for i, j in spans}
        assert lengths == {2, 3}

    def test_unbounded_repeat(self):
        spans = match_spans(parse("a{2,}"), b"aaaa")
        lengths = {j - i for i, j in spans}
        assert lengths == {2, 3, 4}


class TestEnds:
    def test_excludes_empty_matches(self):
        assert match_ends(parse("a*"), b"bbb") == []

    def test_end_indices_zero_based(self):
        assert match_ends(parse("ab"), b"abab") == [1, 3]


def re_oracle_ends(pattern: str, data: bytes):
    """All 0-based end indices of matches, via Python's re (full scan of
    every span — an implementation wholly unrelated to ours)."""
    compiled = re.compile(pattern.encode("latin-1"), re.DOTALL)
    out = set()
    for start in range(len(data)):
        for end in range(start + 1, len(data) + 1):
            if compiled.fullmatch(data, start, end):
                out.add(end - 1)
    return sorted(out)


@pytest.mark.parametrize(
    "pattern",
    [
        "ab{2,4}c",
        "a{3}",
        "(ab|ba)+",
        "a.b",
        "x?y{2}",
        "(a|b){2,5}",
        "ab*c+",
        "[ab]{3}c",
    ],
)
def test_oracle_agrees_with_re(pattern):
    import random

    rng = random.Random(hash(pattern) % 1000)
    node = parse(pattern)
    for _ in range(5):
        data = bytes(rng.choice(b"abcxy") for _ in range(rng.randint(0, 18)))
        assert match_ends(node, data) == re_oracle_ends(pattern, data), data
