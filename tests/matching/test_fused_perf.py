"""Perf regression guard: fused scan vs the per-pattern loop.

Same spirit as ``tests/telemetry/test_overhead.py``: both sides are
timed in the same process with interleaved best-of sampling, and the
bound is generous — on a 16-pattern workload the fused engine measures
5-10x faster than the per-pattern ``nfa`` loop (see ``BENCH_scan.json``),
so asserting 2x leaves ample room for machine noise while still
catching a real regression (e.g. the lazy-DFA cache being disabled).

Skipped under coverage/tracing instrumentation, which distorts the two
loops very differently.
"""

import random
import sys

import pytest

from repro.matching import PatternSet
from repro.resilience import Budget
from repro.workloads import PROFILES, dataset_stream, load_dataset, match_rate_stream

from .._perf import measure_pair, skip_if_loaded

pytestmark = pytest.mark.skipif(
    "coverage" in sys.modules or sys.gettrace() is not None,
    reason="timing guard is meaningless under coverage/tracing",
)

NUM_PATTERNS = 16
INPUT_BYTES = 8192
ROUNDS = 5
REQUIRED_SPEEDUP = 2.0


def test_fused_scan_at_least_2x_per_pattern_loop():
    skip_if_loaded()
    profile = PROFILES["RegexLib"]
    patterns = load_dataset("RegexLib", NUM_PATTERNS, seed=5)
    data = dataset_stream(
        patterns, random.Random(9), INPUT_BYTES, profile.literal_pool
    )
    fused = PatternSet(patterns, engine="fused")
    per_pattern = PatternSet(patterns, engine="nfa")

    # Warm both (allocations, lazy-DFA cache) and check equivalence on
    # the way — a perf guard on a wrong result would be worthless.
    assert fused.scan(data) == per_pattern.scan(data)

    fused_time, per_pattern_time = measure_pair(
        lambda: fused.scan(data),
        lambda: per_pattern.scan(data),
        rounds=ROUNDS,
    )

    assert fused_time * REQUIRED_SPEEDUP <= per_pattern_time, (
        f"fused scan {fused_time * 1e3:.2f} ms vs per-pattern loop "
        f"{per_pattern_time * 1e3:.2f} ms — speedup "
        f"{per_pattern_time / fused_time:.2f}x < {REQUIRED_SPEEDUP}x"
    )


def test_table_tier_at_least_2x_bitset_fused():
    """The dense-table inner loop vs pure bitset stepping on the same
    rules and a low-match-rate stream (the table's home turf: the bench
    measures 3-5x, so 2x leaves noise headroom)."""
    skip_if_loaded()
    profile = PROFILES["RegexLib"]
    patterns = load_dataset("RegexLib", NUM_PATTERNS, seed=5)
    data = match_rate_stream(
        patterns, random.Random(9), INPUT_BYTES, profile.literal_pool, 0.001
    )
    table = PatternSet(patterns, engine="fused", prefilter=False)
    bitset = PatternSet(
        patterns,
        engine="fused",
        budget=Budget(max_table_states=0),
        prefilter=False,
    )
    assert table.scan(data) == bitset.scan(data)
    assert table._fused.table_info()["live"]

    table_time, bitset_time = measure_pair(
        lambda: table.scan(data),
        lambda: bitset.scan(data),
        rounds=ROUNDS,
    )

    assert table_time * REQUIRED_SPEEDUP <= bitset_time, (
        f"table-driven scan {table_time * 1e3:.2f} ms vs bitset "
        f"{bitset_time * 1e3:.2f} ms — speedup "
        f"{bitset_time / table_time:.2f}x < {REQUIRED_SPEEDUP}x"
    )


def test_prefilter_at_least_5x_bitset_on_zero_match_stream():
    """Prefilter + table vs pure bitset on a 0%-match stream: the skip
    loop touches a few percent of the bytes, so even 5x is conservative
    (the bench measures tens of x)."""
    skip_if_loaded()
    profile = PROFILES["RegexLib"]
    patterns = load_dataset("RegexLib", NUM_PATTERNS, seed=5)
    data = match_rate_stream(
        patterns, random.Random(9), INPUT_BYTES, profile.literal_pool, 0.0
    )
    prefiltered = PatternSet(patterns, engine="fused")
    bitset = PatternSet(
        patterns,
        engine="fused",
        budget=Budget(max_table_states=0),
        prefilter=False,
    )
    assert prefiltered.scan(data) == bitset.scan(data)

    prefiltered_time, bitset_time = measure_pair(
        lambda: prefiltered.scan(data),
        lambda: bitset.scan(data),
        rounds=ROUNDS,
    )

    assert prefiltered_time * 5.0 <= bitset_time, (
        f"prefiltered scan {prefiltered_time * 1e3:.2f} ms vs bitset "
        f"{bitset_time * 1e3:.2f} ms — speedup "
        f"{bitset_time / prefiltered_time:.2f}x < 5.0x"
    )
