"""Golden corpus: realistic mixed patterns through every engine.

A hand-curated set of rule-like patterns spanning the supported feature
space, each run over a crafted input that exercises its matches and
near-misses, verified across all engines (including the fused
multi-pattern engine) and against the oracle.
"""

import pytest

from repro.compiler import CompilerOptions, compile_pattern
from repro.compiler.pipeline import build_unfolded_nfa
from repro.hardware.activity import AHStepper
from repro.hardware.naive import NaiveMachine
from repro.matching import PatternSet, build_fused
from repro.matching.oracle import match_ends as oracle_ends
from repro.resilience import Budget

OPTIONS = CompilerOptions(bv_size=16, unfold_threshold=2)

#: (pattern, input) pairs. Inputs are sized for the O(n^3) oracle.
CORPUS = [
    # network-rule shapes
    ("GET /[a-z]{4,12}", b"GET /admin GET /x"),
    ("Host: .{6}end", b"Host: 123456end"),
    ("(?i)select.{4}from", b"SELECT ---FROM x"),
    ("\\x00{4}[\\x80-\\xff]", b"\x00\x00\x00\x00\x90"),
    # malware-signature shapes
    ("aa(bb|cc){3}dd", b"aabbccbbdd aaccccccdd"),
    ("[0-9a-f]{8}", b"deadbeef cafe0123"),
    ("x{4,}y", b"xxxxy xxxy xxxxxxy"),
    # bio-motif shapes
    ("C.{2,4}C.{3}H", b"CaaCxyzH CaaaaaCxxxH"),
    ("L.{6}L.{6}L", b"LabcdefLghijklL"),
    # general regex-library shapes
    ("[a-z]+@[a-z]{2,8}\\.com", b"bob@mail.com a@b.com"),
    ("\\d{3}-\\d{4}", b"555-1234 55-123"),
    ("a(b?c){2,5}d", b"abcbccd acbcd"),
    ("(ab){2}(cd){2}", b"ababcdcd abcdcd"),
    ("[^x]{5}x", b"abcdex yyyyx"),
    ("q(.q){3}", b"qaqbqcq qq"),
    # bounded-repetition rewrite edge cases (paper Examples 7.1/7.2)
    ("(bc){2}", b"bcbc bc bcbcbc"),  # Ex. 7.1: small exact, unfolded
    ("d{1,3}", b"dddd d"),  # Ex. 7.1: d d? d?
    ("f{2,}", b"ff f ffff"),  # Ex. 7.1: f f f*
    ("b{17}", b"b" * 20),  # Ex. 7.2: 17 > bv_size 16, split
    ("b{2,18}", b"b" * 24),  # Ex. 7.2: range split over read widths
    ("a{1,20}", b"x" + b"a" * 23 + b"x"),  # Ex. 7.2: trailing optionals
    ("xa{0,5}y", b"xy xaaay xaaaaaay"),  # {0,n}: nullable counting block
    ("t{0,3}u", b"u ttu ttttu"),  # {0,n} with zero-width prefix match
    ("((ab){2}|c{3})d", b"ababd cccd abd ccd"),  # counting under alternation
    ("(a{3}b){2}", b"aaabaaab aab aaabaab"),  # nested counting, flattened
    ("aba{2,4}", b"abaa abaaaaab aba"),  # counting after overlapping literal
    ("(ab){2}ab", b"ababab abab"),  # counted body overlaps its own tail
]


@pytest.mark.parametrize("pattern,data", CORPUS)
def test_golden_corpus_all_engines(pattern, data):
    compiled = compile_pattern(pattern, options=OPTIONS)
    expected = oracle_ends(compiled.parsed, data)
    assert compiled.nbva.match_ends(data) == expected, "nbva"
    assert compiled.ah.match_ends(data) == expected, "ah"
    assert build_unfolded_nfa(compiled.parsed).match_ends(data) == expected, "nfa"
    assert build_fused([compiled]).match_ends(data) == expected, "fused"
    assert AHStepper(compiled.ah).match_ends(data) == expected, "stepper"
    assert NaiveMachine(compiled.nbva).match_ends(data) == expected, "naive"


@pytest.mark.parametrize("pattern,data", CORPUS)
def test_golden_corpus_has_matches(pattern, data):
    """Each corpus entry actually exercises the matcher."""
    compiled = compile_pattern(pattern, options=OPTIONS)
    assert oracle_ends(compiled.parsed, data), (pattern, data)


# --- fused stepping tiers over the whole corpus as one rule set ---------
#
# The corpus doubles as the differential bed for the fused engine's
# three stepping tiers: bitset (table_states=0, no prefilter), dense
# table, and table+prefilter must produce byte-identical match streams
# on a mixed rule set whose literals, charclasses, and counting blocks
# stress the literal extractor and the lazy table together.


def _compile_corpus():
    return [
        compile_pattern(pattern, regex_id, OPTIONS)
        for regex_id, (pattern, _) in enumerate(CORPUS)
    ]


def _corpus_stream():
    return b" ".join(data for _, data in CORPUS)


def test_golden_corpus_fused_tiers_byte_identical():
    compiled = _compile_corpus()
    data = _corpus_stream()
    expected = build_fused(compiled, table_states=0, prefilter=False).scan(data)
    assert expected  # the combined stream must exercise matches
    table = build_fused(compiled, prefilter=False)
    assert table.scan(data) == expected
    assert table.table_info()["live"]
    prefiltered = build_fused(compiled)
    assert prefiltered.scan(data) == expected


@pytest.mark.parametrize("chunk", (1, 3, 7, 16))
def test_golden_corpus_chunked_feed_straddles_windows(chunk):
    """Mid-stream ``feed()`` boundaries must not change the stream even
    when a chunk cut lands inside a prefilter arming window (the tail
    re-arming covers literal occurrences straddling the boundary)."""
    compiled = _compile_corpus()
    data = _corpus_stream()
    expected = build_fused(compiled, table_states=0, prefilter=False).scan(data)
    for matcher in (build_fused(compiled), build_fused(compiled, prefilter=False)):
        matcher.reset()
        got = []
        for start in range(0, len(data), chunk):
            for slot, end in matcher.feed(data[start:start + chunk]):
                got.append((slot, start + end))
        assert got == expected, chunk


# --- reduced-vs-unreduced axis ------------------------------------------
#
# ``OPTIONS`` compiles with the default reduction level, so every test
# above already runs the reduced pipeline; this axis pins the unreduced
# pipeline (reduce_level=0) as the reference and re-checks the corpus,
# including mid-stream ``feed()`` boundaries on the reduced matcher.

NO_REDUCE = CompilerOptions(bv_size=16, unfold_threshold=2, reduce_level=0)


@pytest.mark.parametrize("pattern,data", CORPUS)
def test_golden_corpus_reduced_matches_unreduced(pattern, data):
    reduced = compile_pattern(pattern, options=OPTIONS)
    plain = compile_pattern(pattern, options=NO_REDUCE)
    assert reduced.ah.num_states <= plain.ah.num_states
    assert reduced.ah.match_ends(data) == plain.ah.match_ends(data), pattern
    assert build_fused([reduced]).match_ends(data) == build_fused(
        [plain]
    ).match_ends(data), pattern


def test_golden_corpus_reduction_saves_states_somewhere():
    """The corpus must actually exercise the quotient pass."""
    saved = sum(
        compile_pattern(p, options=NO_REDUCE).ah.num_states
        - compile_pattern(p, options=OPTIONS).ah.num_states
        for p, _ in CORPUS
    )
    assert saved > 0


@pytest.mark.parametrize("chunk", (1, 3, 7, 16))
def test_golden_corpus_reduced_chunked_feed_matches_unreduced(chunk):
    """Chunked feeds over the *reduced* fused rule set, with boundaries
    straddling matches, against the unreduced one-shot reference."""
    data = _corpus_stream()
    plain = [
        compile_pattern(pattern, regex_id, NO_REDUCE)
        for regex_id, (pattern, _) in enumerate(CORPUS)
    ]
    expected = build_fused(plain, table_states=0, prefilter=False).scan(data)
    matcher = build_fused(_compile_corpus())
    got = []
    for start in range(0, len(data), chunk):
        for slot, end in matcher.feed(data[start:start + chunk]):
            got.append((slot, start + end))
    assert got == expected, chunk


def test_golden_corpus_sharded_and_oracle_agree():
    patterns = [pattern for pattern, _ in CORPUS]
    data = _corpus_stream()
    fused = PatternSet(patterns, options=OPTIONS, engine="fused").scan(data)
    bitset = PatternSet(
        patterns,
        options=OPTIONS,
        engine="fused",
        budget=Budget(max_table_states=0),
        prefilter=False,
    ).scan(data)
    with PatternSet(
        patterns, options=OPTIONS, engine="sharded", shards=2
    ) as sharded_set:
        sharded = sharded_set.scan(data)
    assert bitset == fused
    assert sharded == fused
    compiled = _compile_corpus()
    for regex_id, regex in enumerate(compiled):
        expected = oracle_ends(regex.parsed, data)
        got = sorted(m.end for m in fused if m.pattern_id == regex_id)
        assert got == expected, patterns[regex_id]
