"""Sharded scan orchestrator: planner, parity, streaming, degradation.

The determinism guarantee under test: the sharded engine's merged match
stream is **byte-identical** to the single-process fused engine's, on
the golden corpus and on profile-shaped differential-fuzz rule sets
(200 seeded cases).  The resilience guarantee: a killed, fault-injected,
or hung shard degrades — the scan completes on the survivors and the
failure is recorded and counted — instead of failing the scan.
"""

import os
import random
import signal
import time

import pytest

from repro import telemetry
from repro.compiler import CompilerOptions, compile_pattern
from repro.matching import (
    PatternSet,
    ShardedScanner,
    estimate_cost,
    plan_shards,
)
from repro.matching.bench import bench_shard_scaling
from repro.workloads import (
    DATASET_NAMES,
    PROFILES,
    dataset_stream,
    generate_pattern,
)

from .test_golden_corpus import CORPUS
from .test_golden_corpus import OPTIONS as GOLDEN_OPTIONS

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)

PATTERNS = ["ab{2,4}c", "a(ba){2}", "c{3,}", "(a|b){4}c", "bc"]


def compile_all(patterns, options=OPTIONS):
    return [
        compile_pattern(p, regex_id, options)
        for regex_id, p in enumerate(patterns)
    ]


# ---------------------------------------------------------------------------
# Cost planner
# ---------------------------------------------------------------------------


class TestPlanner:
    def test_plan_covers_every_slot_exactly_once(self):
        compiled = compile_all(PATTERNS)
        plan = plan_shards(compiled, 3)
        seen = sorted(slot for shard in plan.shards for slot in shard)
        assert seen == list(range(len(PATTERNS)))

    def test_plan_is_deterministic(self):
        compiled = compile_all(PATTERNS)
        first = plan_shards(compiled, 3)
        second = plan_shards(compiled, 3)
        assert first.shards == second.shards
        assert first.costs == second.costs

    def test_more_shards_than_patterns_drops_empties(self):
        compiled = compile_all(["ab", "cd"])
        plan = plan_shards(compiled, 8)
        assert plan.num_shards == 2
        assert all(shard for shard in plan.shards)

    def test_equal_cost_patterns_spread_evenly(self):
        compiled = compile_all(["ab", "cd", "ef", "gh"])
        plan = plan_shards(compiled, 2)
        assert sorted(len(shard) for shard in plan.shards) == [2, 2]
        assert plan.balance() == pytest.approx(1.0)

    def test_lpt_balances_uneven_costs(self):
        # One heavy pattern plus three light ones: the heavy one must
        # sit alone-ish, not stacked with another heavy slot.
        compiled = compile_all(["[a-z]{2,8}x", "ab", "cd", "ef"])
        plan = plan_shards(compiled, 2)
        heavy = estimate_cost(compiled[0], 0).cost
        assert heavy > estimate_cost(compiled[1], 1).cost
        assert plan.balance() < 2.0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            plan_shards([], 0)

    def test_cost_model_signals(self):
        counting, plain = compile_all(["a{8}", "a"])
        cost_counting = estimate_cost(counting, 0)
        cost_plain = estimate_cost(plain, 1)
        assert cost_counting.cost > cost_plain.cost
        assert 0.0 <= cost_plain.activation_ratio <= 1.0
        dense = estimate_cost(compile_pattern(".", 0, OPTIONS), 0)
        assert dense.activation_ratio > cost_plain.activation_ratio

    def test_plan_json_roundtrip_fields(self):
        plan = plan_shards(compile_all(PATTERNS), 2)
        blob = plan.to_json()
        assert set(blob) == {"shards", "costs", "balance"}
        assert len(blob["shards"]) == len(blob["costs"])


# ---------------------------------------------------------------------------
# Determinism parity with the fused engine
# ---------------------------------------------------------------------------


class TestFusedParity:
    def test_golden_corpus_byte_identical(self):
        """Full golden corpus as ONE pattern set over the concatenated
        inputs: sharded == fused, match for match, in order."""
        patterns = [pattern for pattern, _data in CORPUS]
        data = b" ".join(data for _pattern, data in CORPUS)
        fused = PatternSet(patterns, options=GOLDEN_OPTIONS, engine="fused")
        expected = [(m.pattern_id, m.end) for m in fused.scan(data)]
        assert expected, "corpus produced no matches; parity check is vacuous"
        for num_shards in (2, 3):
            with ShardedScanner(fused.compiled, num_shards=num_shards) as scanner:
                assert scanner.scan(data) == expected, num_shards

    def test_differential_fuzz_200_seeded_cases(self):
        """Profile-shaped rule sets × seeded streams: 40 pattern sets ×
        5 streams = 200 cases, every one byte-identical to fused."""
        cases = 0
        for set_seed in range(40):
            profile = PROFILES[DATASET_NAMES[set_seed % len(DATASET_NAMES)]]
            rng = random.Random(set_seed)
            patterns = [generate_pattern(rng, profile) for _ in range(3)]
            fused = PatternSet(patterns, options=OPTIONS, engine="fused")
            with ShardedScanner(fused.compiled, num_shards=2) as scanner:
                for stream_seed in range(5):
                    stream = dataset_stream(
                        patterns,
                        random.Random(1000 * set_seed + stream_seed),
                        160,
                        profile.literal_pool,
                        plant_rate=0.05,
                    )
                    expected = [
                        (m.pattern_id, m.end) for m in fused.scan(stream)
                    ]
                    assert scanner.scan(stream) == expected, (
                        set_seed,
                        stream_seed,
                        patterns,
                    )
                    cases += 1
        assert cases == 200

    def test_single_shard_equals_fused(self):
        compiled = compile_all(PATTERNS)
        data = b"abbcc abbbbc a ba ba cccc aabbc" * 8
        fused = PatternSet(PATTERNS, options=OPTIONS, engine="fused")
        expected = [(m.pattern_id, m.end) for m in fused.scan(data)]
        with ShardedScanner(compiled, num_shards=1) as scanner:
            assert scanner.num_shards == 1
            assert scanner.scan(data) == expected

    def test_inline_backend_equals_process_backend(self):
        compiled = compile_all(PATTERNS)
        data = b"ab c abbc ababc ccc bcbc" * 20
        with ShardedScanner(compiled, num_shards=2) as process_backend:
            with ShardedScanner(
                compiled, num_shards=2, backend="inline"
            ) as inline_backend:
                assert process_backend.scan(data) == inline_backend.scan(data)

    def test_quarantine_preserves_original_ids(self):
        ps = PatternSet(
            ["ab", "bad(", "cd"],
            engine="sharded",
            shards=2,
            on_error="quarantine",
        )
        with ps:
            assert [r.pattern_id for r in ps.reports if r.quarantined] == [1]
            assert [(m.pattern_id, m.end) for m in ps.scan(b"ab cd")] == [
                (0, 1),
                (2, 4),
            ]

    def test_all_patterns_quarantined_scans_empty(self):
        with PatternSet(
            ["bad(", "also["], engine="sharded", on_error="quarantine"
        ) as ps:
            assert ps.scan(b"anything") == []


# ---------------------------------------------------------------------------
# Streaming contract
# ---------------------------------------------------------------------------


class TestStreaming:
    def test_chunked_feed_equals_scan_across_chunk_sizes(self):
        compiled = compile_all(PATTERNS)
        data = b"abbcc abbbbc a ba ba cccc" * 12
        with ShardedScanner(compiled, num_shards=2) as scanner:
            whole = scanner.scan(data)
            for chunk in (1, 3, 7, 64, len(data)):
                scanner.reset()
                rebased = []
                base = 0
                while base < len(data):
                    piece = data[base : base + chunk]
                    rebased.extend(
                        (pid, base + end) for pid, end in scanner.feed(piece)
                    )
                    base += len(piece)
                assert rebased == whole, chunk

    def test_internal_chunking_is_invisible(self):
        """The broadcast chunk size must not affect the stream."""
        compiled = compile_all(PATTERNS)
        data = b"abbc bc ccc ababc " * 30
        streams = []
        for chunk_bytes in (5, 17, 1 << 16):
            with ShardedScanner(
                compiled, num_shards=2, chunk_bytes=chunk_bytes
            ) as scanner:
                streams.append(scanner.scan(data))
        assert streams[0] == streams[1] == streams[2]

    def test_empty_feed_is_a_noop(self):
        with ShardedScanner(compile_all(["ab"]), num_shards=1) as scanner:
            assert scanner.feed(b"") == []
            assert scanner.feed(b"ab") == [(0, 1)]


# ---------------------------------------------------------------------------
# Failure degradation
# ---------------------------------------------------------------------------


class TestShardFailure:
    def _patterns_and_data(self):
        # Two shards with disjoint, easily recognisable patterns.
        return ["ax", "bx"], b"ax bx " * 50

    def test_sigkilled_shard_degrades_scan_completes(self):
        patterns, data = self._patterns_and_data()
        with telemetry.session():
            with PatternSet(patterns, engine="sharded", shards=2) as ps:
                healthy = ps.scan(data)
                assert {m.pattern_id for m in healthy} == {0, 1}
                victim_pid = ps._sharded.worker_pids()[0]
                os.kill(victim_pid, signal.SIGKILL)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    try:
                        os.kill(victim_pid, 0)
                    except ProcessLookupError:
                        break
                    time.sleep(0.01)
                degraded = ps.scan(data)
                assert degraded, "scan must complete on the surviving shard"
                failures = ps.shard_failures
                assert len(failures) == 1
                dead_ids = set(failures[0].pattern_ids)
                assert {m.pattern_id for m in degraded} == {0, 1} - dead_ids
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["scan.shard.failed"] == 1

    def test_fault_injected_shard_degrades_mid_stream(self):
        patterns, data = self._patterns_and_data()
        with telemetry.session():
            compiled = compile_all(patterns)
            with ShardedScanner(compiled, num_shards=2) as scanner:
                before = scanner.feed(data)
                assert {pid for pid, _ in before} == {0, 1}
                scanner.inject_fault(0, mode="die")
                after = scanner.feed(data)
                assert len(scanner.failures) == 1
                assert scanner.failures[0].reason in ("died", "send_failed")
                dead_ids = set(scanner.failures[0].pattern_ids)
                assert {pid for pid, _ in after} == {0, 1} - dead_ids
                assert scanner.live_shards() != []
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["scan.shard.failed"] == 1

    def test_hung_shard_times_out_and_degrades(self):
        patterns, data = self._patterns_and_data()
        compiled = compile_all(patterns)
        with ShardedScanner(
            compiled, num_shards=2, recv_timeout_s=0.5
        ) as scanner:
            scanner.feed(data)
            scanner.inject_fault(1, mode="hang")
            out = scanner.feed(data)
            assert [f.reason for f in scanner.failures] == ["timeout"]
            assert out, "surviving shard keeps reporting"

    def test_surviving_stream_stays_deterministic_after_failure(self):
        """Post-degradation output equals a fused scan of the surviving
        patterns only — the failure never reorders or duplicates."""
        patterns, data = self._patterns_and_data()
        compiled = compile_all(patterns)
        with ShardedScanner(compiled, num_shards=2) as scanner:
            scanner.scan(data)
            scanner.inject_fault(0, mode="die")
            degraded = scanner.scan(data)
            dead_ids = set(scanner.failures[0].pattern_ids)
        survivors = [c for c in compiled if c.regex_id not in dead_ids]
        with ShardedScanner(survivors, num_shards=1) as reference:
            assert degraded == reference.scan(data)

    def test_stats_report_failures(self):
        compiled = compile_all(["ax", "bx"])
        with ShardedScanner(compiled, num_shards=2) as scanner:
            scanner.feed(b"ax bx")
            scanner.inject_fault(0, mode="die")
            scanner.feed(b"ax bx")
            stats = scanner.stats()
        assert stats["num_shards"] == 2
        assert stats["live_shards"] == 1
        assert stats["failures"] and stats["failures"][0]["reason"] in (
            "died",
            "send_failed",
        )


# ---------------------------------------------------------------------------
# Lifecycle and telemetry
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_close_is_idempotent_and_feed_after_close_raises(self):
        scanner = ShardedScanner(compile_all(["ab"]), num_shards=1)
        assert scanner.feed(b"ab") == [(0, 1)]
        scanner.close()
        scanner.close()
        with pytest.raises(RuntimeError):
            scanner.feed(b"ab")

    def test_workers_are_reaped_on_close(self):
        scanner = ShardedScanner(compile_all(["ab", "cd"]), num_shards=2)
        scanner.feed(b"ab")
        pids = [pid for pid in scanner.worker_pids() if pid is not None]
        assert len(pids) == 2
        scanner.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if all(not _pid_alive(pid) for pid in pids):
                break
            time.sleep(0.01)
        assert all(not _pid_alive(pid) for pid in pids)

    def test_invalid_arguments_rejected(self):
        compiled = compile_all(["ab"])
        with pytest.raises(ValueError):
            ShardedScanner(compiled, backend="threads")
        with pytest.raises(ValueError):
            ShardedScanner(compiled, chunk_bytes=0)
        with pytest.raises(ValueError):
            ShardedScanner(compiled, recv_timeout_s=0)
        with pytest.raises(ValueError):
            ShardedScanner(compiled, pattern_ids=[1, 2])

    def test_telemetry_counters_and_gauges(self):
        with telemetry.session():
            with PatternSet(
                ["ab{2,4}c", "bc"], engine="sharded", shards=2
            ) as ps:
                ps.scan(b"abbc bc " * 100)
            snapshot = telemetry.snapshot()
        counters = snapshot["counters"]
        assert counters["scan.shard.bytes"] == 2 * 800
        assert counters["scan.shard.matches"] > 0
        assert any(k.startswith("scan.shard.events") for k in counters)
        gauges = snapshot["gauges"]
        assert gauges["scan.shard.workers"]["value"] == 2
        assert any(k.startswith("scan.shard.occupancy") for k in gauges)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


# ---------------------------------------------------------------------------
# Bench helper
# ---------------------------------------------------------------------------


def test_bench_shard_scaling_record_shape():
    patterns = ["ab{2,4}c", "bc", "c{3,}"]
    data = b"abbc bc ccc " * 40
    record = bench_shard_scaling(patterns, data, (1, 2), repeats=1)
    assert record["num_patterns"] == 3
    assert record["cpus"] == os.cpu_count()
    assert [row["shards"] for row in record["shards"]] == [1, 2]
    for row in record["shards"]:
        assert row["matches"] == record["fused"]["matches"]
        assert "speedup_vs_fused" in row


# ---------------------------------------------------------------------------
# Worker telemetry aggregation (satellite of the observability PR)
# ---------------------------------------------------------------------------


class TestWorkerStats:
    """Worker-side counters cross the process boundary with each reply
    and merge into the parent registry as monotone per-shard deltas."""

    def test_process_workers_ship_stats(self):
        compiled = compile_all(["ax", "bx"])
        data = b"ax bx " * 50
        with telemetry.session():
            with ShardedScanner(compiled, num_shards=2) as scanner:
                scanner.scan(data)
                worker_stats = scanner.stats()["worker_stats"]
            snapshot = telemetry.snapshot()
        assert set(worker_stats) == {0, 1}
        for stats in worker_stats.values():
            assert stats["symbols"] == len(data)
            assert set(stats) >= {"cache_hits", "cache_misses", "symbols"}
        counters = snapshot["counters"]
        assert counters["scan.shard.symbols{shard=0}"] == len(data)
        assert counters["scan.shard.symbols{shard=1}"] == len(data)

    def test_inline_backend_ships_stats(self):
        compiled = compile_all(["ax", "bx"])
        data = b"ax bx " * 50
        with telemetry.session():
            with ShardedScanner(
                compiled, num_shards=2, backend="inline"
            ) as scanner:
                scanner.scan(data)
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["scan.shard.symbols{shard=0}"] == len(
            data
        )

    def test_deltas_stay_monotone_across_feeds(self):
        """Workers ship cumulative totals; the parent publishes only the
        delta, so N feeds sum to exactly N x the per-feed work."""
        compiled = compile_all(["ax", "bx"])
        data = b"ax bx " * 20
        with telemetry.session():
            with ShardedScanner(compiled, num_shards=2) as scanner:
                scanner.feed(data)
                scanner.feed(data)
                scanner.feed(data)
            snapshot = telemetry.snapshot()
        assert snapshot["counters"]["scan.shard.symbols{shard=0}"] == 3 * len(
            data
        )

    def test_restart_resets_worker_baselines(self):
        """A restarted worker's counters begin again at zero; the parent
        clears its published baseline so the next delta is not negative
        (and not silently dropped)."""
        data = b"ax bx cx " * 20
        with telemetry.session():
            with ShardedScanner(
                compile_all(["ax", "bx"]), num_shards=2
            ) as scanner:
                scanner.feed(data)
                # add_patterns restarts the receiving shard: its fresh
                # worker's cumulative counters begin again at zero.
                scanner.add_patterns(
                    compile_all(["cx"]), pattern_ids=[2]
                )
                scanner.feed(data)
                restarted = {
                    index: stats["symbols"]
                    for index, stats in scanner.stats()[
                        "worker_stats"
                    ].items()
                }
            snapshot = telemetry.snapshot()
        # The restarted worker's cumulative count covers one feed; the
        # untouched worker's covers both.
        assert sorted(restarted.values()) == [len(data), 2 * len(data)]
        counters = snapshot["counters"]
        total = sum(
            value
            for key, value in counters.items()
            if key.startswith("scan.shard.symbols{")
        )
        # Every shard scanned every feed: 2 shards x 2 feeds, nothing
        # dropped and nothing double-published across the restart.
        assert total == 4 * len(data)

    def test_stats_survive_without_telemetry_session(self):
        compiled = compile_all(["ax", "bx"])
        with ShardedScanner(compiled, num_shards=2) as scanner:
            scanner.scan(b"ax bx " * 10)
            worker_stats = scanner.stats()["worker_stats"]
        assert all(s["symbols"] == 60 for s in worker_stats.values())
