"""Cross-engine consistency — the paper's §8 functional verification.

Every execution engine in the stack (unfolded NFA, NCA, NBVA, AH-NBVA,
the fused multi-pattern engine, the instrumented hardware stepper, and
the naïve PE-array machine) must produce the identical match stream, and
that stream must equal the brute-force oracle's.  Checked on hand-picked
corner cases, on Hypothesis-generated regexes and inputs, and — the
differential conformance fuzzer — on the synthetic workload-profile
generators (``repro.workloads.generator``), whose rule shapes mirror the
paper's seven benchmark datasets.
"""

import random

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.automata.nca import NCAMatcher
from repro.compiler import CompilerOptions, compile_ast, compile_pattern
from repro.compiler.pipeline import build_unfolded_nfa
from repro.hardware.activity import AHStepper
from repro.hardware.naive import NaiveMachine
from repro.matching import ENGINES, PatternSet, build_fused
from repro.matching.oracle import match_ends as oracle_ends
from repro.regex.generate import random_regex
from repro.regex.parser import parse
from repro.workloads import DATASET_NAMES, PROFILES, dataset_stream, generate_pattern

OPTIONS = CompilerOptions(bv_size=8, unfold_threshold=2)


def all_engine_ends(compiled, data):
    return {
        "nfa": build_unfolded_nfa(compiled.parsed).match_ends(data),
        "nbva": compiled.nbva.match_ends(data),
        "nca": NCAMatcher(compiled.nbva).match_ends(data),
        "ah": compiled.ah.match_ends(data),
        "fused": build_fused([compiled]).match_ends(data),
        "fused-bitset": build_fused(
            [compiled], table_states=0, prefilter=False
        ).match_ends(data),
        "stepper": AHStepper(compiled.ah).match_ends(data),
        "naive": NaiveMachine(compiled.nbva).match_ends(data),
    }


CORNER_CASES = [
    ("a{3}", b"aaaaa"),
    ("a{3}", b"aa"),
    ("a.{3}", b"babaaabaaaa"),  # Fig. 1
    ("a(.a){3}b", b"abaaabab"),  # Tables 1/2
    ("ab{2,5}c", b"abbbbbbc abbc abc"),
    ("ab{2,5}(cd){6}e", b"abb" + b"cd" * 6 + b"e"),
    ("(a|b){4}c", b"ababc aac"),
    ("a{2,}b", b"ab aab aaaab"),
    ("(ab?c){3}", b"abcacabc" + b"acacac"),
    ("x.{6}y", b"x123456y xy x1234567y"),
    ("a+b{3}", b"aabbb abbb abb"),
    ("(a{4}b)+c", b"aaaabaaaabc"),
    ("a{4}|b{3}", b"aaaa bbb"),
    ("a?b{3}c", b"abbbc bbbc"),
]


@pytest.mark.parametrize("pattern,data", CORNER_CASES)
def test_corner_cases(pattern, data):
    compiled = compile_pattern(pattern, options=OPTIONS)
    expected = oracle_ends(compiled.parsed, data)
    for engine, got in all_engine_ends(compiled, data).items():
        assert got == expected, (pattern, engine, got, expected)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_random_regexes_all_engines_agree(seed, data):
    rng = random.Random(seed)
    node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=7)
    compiled = compile_ast(node, str(node), options=OPTIONS)
    stream = bytes(
        data.draw(
            st.lists(
                st.sampled_from([ord("a"), ord("b"), ord("c")]),
                min_size=0,
                max_size=30,
            )
        )
    )
    expected = oracle_ends(node, stream)
    for engine, got in all_engine_ends(compiled, stream).items():
        assert got == expected, (str(node), engine, stream)


# --- differential conformance fuzzing over the workload profiles --------
#
# Seeds are plain small integers so Hypothesis shrinks a failure to the
# smallest misbehaving (profile, pattern seed, stream seed) triple; the
# example budgets are sized for CI (the whole fuzz adds a few seconds).

#: Oracle guard: the O(n^3) oracle and the unfolded-NFA engine both need
#: the fully unfolded automaton to stay small on CI.
MAX_UNFOLDED_STATES = 600


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)
@given(
    name=st.sampled_from(DATASET_NAMES),
    seed=st.integers(min_value=0, max_value=5_000),
    stream_seed=st.integers(min_value=0, max_value=1_000),
)
def test_workload_profiles_differential(name, seed, stream_seed):
    """Profile-shaped rules: every engine vs the brute-force oracle."""
    profile = PROFILES[name]
    pattern = generate_pattern(random.Random(seed), profile)
    compiled = compile_pattern(pattern, options=OPTIONS)
    assume(
        compiled.unfolded_states is not None
        and compiled.unfolded_states <= MAX_UNFOLDED_STATES
    )
    stream = dataset_stream(
        [pattern],
        random.Random(stream_seed),
        48,
        profile.literal_pool,
        plant_rate=0.05,
    )
    expected = oracle_ends(compiled.parsed, stream)
    for engine, got in all_engine_ends(compiled, stream).items():
        assert got == expected, (pattern, engine, stream)


@settings(max_examples=8, deadline=None)
@given(
    name=st.sampled_from(DATASET_NAMES),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_fused_multi_pattern_differential(name, seed):
    """Whole profile-shaped rule *sets*: the fused engine's combined
    state space and report map vs every per-pattern engine (pattern ids
    included, which the single-pattern oracle check cannot see)."""
    profile = PROFILES[name]
    rng = random.Random(seed)
    patterns = [generate_pattern(rng, profile) for _ in range(3)]
    stream = dataset_stream(
        patterns, rng, 240, profile.literal_pool, plant_rate=0.02
    )
    results = {
        engine: PatternSet(patterns, options=OPTIONS, engine=engine).scan(
            stream
        )
        for engine in ENGINES
    }
    reference = results["fused"]
    for engine, got in results.items():
        assert got == reference, (engine, patterns)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_bv_size_invariance(seed):
    """Compiling with different bv_size/threshold must not change the
    language."""
    rng = random.Random(seed)
    node = random_regex(rng, alphabet=b"ab", depth=2, max_bound=40)
    stream = bytes(rng.choice(b"ab") for _ in range(60))
    results = []
    for bv_size in (8, 16, 64):
        for threshold in (2, 8):
            options = CompilerOptions(bv_size=bv_size, unfold_threshold=threshold)
            compiled = compile_ast(node, str(node), options=options)
            results.append(compiled.ah.match_ends(stream))
    assert all(r == results[0] for r in results), str(node)
