"""File exporter tests: Chrome trace, JSONL, metrics snapshots."""

import json

import pytest

from repro import telemetry
from repro.telemetry.export import (
    load_chrome_trace,
    load_metrics,
    write_chrome_trace,
    write_jsonl_trace,
    write_metrics,
    write_trace,
)


@pytest.fixture()
def populated_telemetry():
    with telemetry.session():
        with telemetry.span("compile.parse", "compile", regex_id=0):
            pass
        telemetry.counter("engine.symbols_scanned").inc(10)
        yield


class TestTraceFiles:
    def test_chrome_trace_file(self, tmp_path, populated_telemetry):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path)
        doc = load_chrome_trace(path)
        assert doc["traceEvents"][0]["name"] == "compile.parse"
        assert doc["traceEvents"][0]["ph"] == "X"

    def test_jsonl_trace_file(self, tmp_path, populated_telemetry):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl_trace(path)
        lines = open(path).read().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["compile.parse"]

    def test_write_trace_dispatch(self, tmp_path, populated_telemetry):
        chrome = str(tmp_path / "a.json")
        jsonl = str(tmp_path / "b.jsonl")
        write_trace(chrome, "chrome")
        write_trace(jsonl, "jsonl")
        assert "traceEvents" in json.load(open(chrome))
        assert json.loads(open(jsonl).read().splitlines()[0])

    def test_write_trace_bad_format(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(str(tmp_path / "x"), "xml")

    def test_empty_trace_still_valid(self, tmp_path):
        path = str(tmp_path / "empty.json")
        write_chrome_trace(path)
        assert load_chrome_trace(path)["traceEvents"] == []


class TestMetricsFiles:
    def test_metrics_file_round_trip(self, tmp_path, populated_telemetry):
        path = str(tmp_path / "metrics.json")
        write_metrics(path)
        snap = load_metrics(path)
        assert snap["counters"]["engine.symbols_scanned"] == 10
        assert snap["spans"]["compile.parse"]["count"] == 1

    def test_explicit_snapshot(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        write_metrics(path, {"counters": {"x": 1}})
        assert load_metrics(path) == {"counters": {"x": 1}}


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------

import re as _re
import urllib.request

from repro.telemetry.export import METRICS_FORMATS, MetricsServer, to_prometheus

_SAMPLE_RE = _re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"                       # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""  # first label
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" (-?[0-9.e+-]+|[+-]Inf|NaN)$"
)
_TYPE_RE = _re.compile(
    r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$"
)


def lint_prometheus(text: str) -> dict:
    """A small text-format lint: every line is a valid sample or a TYPE
    comment, each family's TYPE line precedes its samples and appears
    exactly once.  Returns {family: type}."""
    assert text.endswith("\n"), "exposition must end with a newline"
    types: dict = {}
    for line in text.splitlines():
        type_match = _TYPE_RE.match(line)
        if type_match:
            family = type_match.group(1)
            assert family not in types, f"duplicate TYPE for {family}"
            types[family] = type_match.group(2)
            continue
        assert _SAMPLE_RE.match(line), f"unparseable sample line: {line!r}"
        name = line.split("{")[0].split(" ")[0]
        assert name in types, f"sample {name!r} before its TYPE line"
    return types


SNAPSHOT = {
    "counters": {
        "engine.symbols_scanned": 4096,
        'scan.shard.cache_hits{shard=1}': 7,
        'scan.shard.cache_hits{shard=0}': 3,
    },
    "gauges": {
        'engine.active_states{engine=fused}': {"value": 5, "max": 9},
    },
    "histograms": {
        "engine.fused.occupancy": {
            "bounds": [1, 2, 4],
            "counts": [10, 5, 1],
            "count": 17,
            "sum": 33.5,
        },
    },
    "spans": {
        "engine.scan": {"count": 2, "total_us": 1500.0, "max_us": 900.0},
    },
}


class TestPrometheusFormat:
    def test_lint_passes_on_full_snapshot(self):
        types = lint_prometheus(to_prometheus(SNAPSHOT))
        assert types["repro_engine_symbols_scanned_total"] == "counter"
        assert types["repro_engine_active_states"] == "gauge"
        assert types["repro_engine_fused_occupancy_bucket"] == "histogram"
        assert types["repro_span_count"] == "gauge"

    def test_counters_become_total_with_labels(self):
        text = to_prometheus(SNAPSHOT)
        assert "repro_engine_symbols_scanned_total 4096" in text
        assert 'repro_scan_shard_cache_hits_total{shard="0"} 3' in text
        assert 'repro_scan_shard_cache_hits_total{shard="1"} 7' in text

    def test_histogram_buckets_cumulative_ending_inf(self):
        text = to_prometheus(SNAPSHOT)
        buckets = [
            line for line in text.splitlines()
            if line.startswith("repro_engine_fused_occupancy_bucket")
        ]
        values = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert values == [10, 15, 16, 17]
        assert values == sorted(values), "bucket counts must be cumulative"
        assert 'le="+Inf"} 17' in buckets[-1]
        assert "repro_engine_fused_occupancy_sum 33.5" in text
        assert "repro_engine_fused_occupancy_count 17" in text

    def test_label_values_escaped(self):
        text = to_prometheus(
            {"counters": {'weird.metric{source=a"b\\c}': 1}}
        )
        lint_prometheus(text)
        assert 'source="a\\"b\\\\c"' in text

    def test_span_summary_labelled_by_name(self):
        text = to_prometheus(SNAPSHOT)
        assert 'repro_span_count{span="engine.scan"} 2' in text
        assert 'repro_span_total_us{span="engine.scan"} 1500' in text

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({}) == ""

    def test_live_snapshot_lints(self, populated_telemetry):
        text = to_prometheus(telemetry.snapshot())
        types = lint_prometheus(text)
        assert "repro_engine_symbols_scanned_total" in types

    def test_write_metrics_prometheus(self, tmp_path, populated_telemetry):
        path = str(tmp_path / "metrics.prom")
        write_metrics(path, fmt="prometheus")
        lint_prometheus(open(path).read())

    def test_write_metrics_rejects_unknown_format(self, tmp_path):
        assert set(METRICS_FORMATS) == {"json", "prometheus"}
        with pytest.raises(ValueError):
            write_metrics(str(tmp_path / "x"), {}, fmt="yaml")


class TestMetricsServer:
    def test_scrape_endpoints(self, populated_telemetry):
        with MetricsServer(port=0) as server:
            assert server.port
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics") as response:
                assert response.status == 200
                assert response.headers["Content-Type"].startswith(
                    "text/plain; version=0.0.4"
                )
                types = lint_prometheus(response.read().decode())
            assert "repro_engine_symbols_scanned_total" in types
            with urllib.request.urlopen(f"{base}/metrics.json") as response:
                doc = json.loads(response.read().decode())
            assert doc["counters"]["engine.symbols_scanned"] == 10

    def test_unknown_path_404(self):
        with MetricsServer(port=0) as server:
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/other"
                )
            except urllib.error.HTTPError as error:
                assert error.code == 404
            else:
                raise AssertionError("expected 404")

    def test_stop_is_idempotent(self):
        server = MetricsServer(port=0).start()
        server.stop()
        server.stop()
