"""File exporter tests: Chrome trace, JSONL, metrics snapshots."""

import json

import pytest

from repro import telemetry
from repro.telemetry.export import (
    load_chrome_trace,
    load_metrics,
    write_chrome_trace,
    write_jsonl_trace,
    write_metrics,
    write_trace,
)


@pytest.fixture()
def populated_telemetry():
    with telemetry.session():
        with telemetry.span("compile.parse", "compile", regex_id=0):
            pass
        telemetry.counter("engine.symbols_scanned").inc(10)
        yield


class TestTraceFiles:
    def test_chrome_trace_file(self, tmp_path, populated_telemetry):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path)
        doc = load_chrome_trace(path)
        assert doc["traceEvents"][0]["name"] == "compile.parse"
        assert doc["traceEvents"][0]["ph"] == "X"

    def test_jsonl_trace_file(self, tmp_path, populated_telemetry):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl_trace(path)
        lines = open(path).read().splitlines()
        assert [json.loads(l)["name"] for l in lines] == ["compile.parse"]

    def test_write_trace_dispatch(self, tmp_path, populated_telemetry):
        chrome = str(tmp_path / "a.json")
        jsonl = str(tmp_path / "b.jsonl")
        write_trace(chrome, "chrome")
        write_trace(jsonl, "jsonl")
        assert "traceEvents" in json.load(open(chrome))
        assert json.loads(open(jsonl).read().splitlines()[0])

    def test_write_trace_bad_format(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(str(tmp_path / "x"), "xml")

    def test_empty_trace_still_valid(self, tmp_path):
        path = str(tmp_path / "empty.json")
        write_chrome_trace(path)
        assert load_chrome_trace(path)["traceEvents"] == []


class TestMetricsFiles:
    def test_metrics_file_round_trip(self, tmp_path, populated_telemetry):
        path = str(tmp_path / "metrics.json")
        write_metrics(path)
        snap = load_metrics(path)
        assert snap["counters"]["engine.symbols_scanned"] == 10
        assert snap["spans"]["compile.parse"]["count"] == 1

    def test_explicit_snapshot(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        write_metrics(path, {"counters": {"x": 1}})
        assert load_metrics(path) == {"counters": {"x": 1}}
