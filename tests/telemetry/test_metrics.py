"""Metrics registry unit tests."""

import json

import pytest

from repro.telemetry.metrics import (
    Histogram,
    MetricsRegistry,
    OCCUPANCY_BUCKETS,
    canonical_key,
)


class TestCanonicalKey:
    def test_no_labels(self):
        assert canonical_key("a.b", {}) == "a.b"

    def test_labels_sorted(self):
        assert canonical_key("m", {"b": 2, "a": 1}) == "m{a=1,b=2}"


class TestCounter:
    def test_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(4)
        assert registry.get("hits") == 5

    def test_labelled_counters_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("bvm", tile=0).inc()
        registry.counter("bvm", tile=1).inc(2)
        assert registry.get("bvm", tile=0) == 1
        assert registry.get("bvm", tile=1) == 2

    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c", x=1) is registry.counter("c", x=1)


class TestGauge:
    def test_set_and_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("occupancy")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max_value == 5

    def test_update_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hwm")
        gauge.update_max(3)
        gauge.update_max(1)
        assert gauge.value == 3


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_edges(self):
        hist = Histogram("h", {}, bounds=(1, 2, 4))
        for value in (0, 1, 2, 3, 4, 5):
            hist.observe(value)
        # counts: <=1 (0,1), <=2 (2), <=4 (3,4), overflow (5)
        assert hist.counts == [2, 1, 2, 1]
        assert hist.count == 6
        assert hist.sum == 15
        assert hist.min == 0 and hist.max == 5

    def test_mean(self):
        hist = Histogram("h", {}, bounds=(10,))
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == pytest.approx(3.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", {}, bounds=(2, 1))

    def test_default_occupancy_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("occ")
        assert hist.bounds == OCCUPANCY_BUCKETS


class TestSnapshot:
    def test_snapshot_shape_and_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c", tile=3).inc(7)
        registry.gauge("g").set(1.5)
        registry.histogram("h", bounds=(1, 2)).observe(2)
        snap = registry.snapshot()
        restored = json.loads(json.dumps(snap))
        assert restored["counters"]["c{tile=3}"] == 7
        assert restored["gauges"]["g"]["value"] == 1.5
        assert restored["histograms"]["h"]["counts"] == [0, 1, 0]
        assert restored["histograms"]["h"]["count"] == 1

    def test_to_json_parses(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert json.loads(registry.to_json())["counters"]["x"] == 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("nope") is None
