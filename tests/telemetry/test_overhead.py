"""Micro-overhead guard: disabled telemetry must be (nearly) free.

``PatternSet.feed`` keeps the pre-telemetry scan loop as its disabled
fast path, so scanning with telemetry off must stay within a small
factor of an un-instrumented copy of that loop timed in the same test
run (same machine, same load, interleaved samples).
"""

import time

from repro import telemetry
from repro.matching import PatternSet

PATTERNS = ["ab{10}c", "x[0-9]{4}y", "zq"]
DATA = (b"abbbbbbbbbbc x0123y zq padding " * 40)
ROUNDS = 7


def _raw_scan(pattern_set, data):
    """The un-instrumented baseline: PatternSet.feed's original loop."""
    for matcher in pattern_set._matchers:
        matcher.reset()
    out = []
    matchers = pattern_set._matchers
    for offset, symbol in enumerate(data):
        for pattern_id, matcher in enumerate(matchers):
            if matcher.step(symbol):
                out.append((pattern_id, offset))
    return out


def _best_of(func, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def test_disabled_scan_overhead_within_bound():
    assert not telemetry.enabled()
    ps = PatternSet(PATTERNS)

    # Warm both paths (allocation, caches) before timing.
    ps.scan(DATA)
    _raw_scan(ps, DATA)

    # Interleave the two timed workloads so machine noise hits both.
    instrumented = float("inf")
    baseline = float("inf")
    for _ in range(ROUNDS):
        instrumented = min(instrumented, _best_of(lambda: ps.scan(DATA), 1))
        baseline = min(baseline, _best_of(lambda: _raw_scan(ps, DATA), 1))

    # The disabled path is the identical loop plus one enabled() check per
    # scan, so 1.15x leaves ample room for timer noise; the absolute
    # epsilon guards tiny workloads on very fast machines.
    assert instrumented <= baseline * 1.15 + 1e-3, (
        f"disabled-telemetry scan {instrumented * 1e3:.3f} ms vs "
        f"uninstrumented baseline {baseline * 1e3:.3f} ms"
    )


def test_scan_results_match_baseline():
    ps = PatternSet(PATTERNS)
    scanned = [(m.pattern_id, m.end) for m in ps.scan(DATA)]
    assert scanned == _raw_scan(ps, DATA)
