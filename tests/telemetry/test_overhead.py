"""Micro-overhead guard: disabled telemetry must be (nearly) free.

``PatternSet.feed`` keeps the pre-telemetry scan loop as its disabled
fast path, so scanning with telemetry off must stay within a small
factor of an un-instrumented copy of that loop timed in the same test
run (same machine, same load, interleaved samples).  The same contract
covers the flight recorder and the scan-path profiler: all three share
the per-chunk enablement check in ``_feed_block``.
"""

from repro import telemetry
from repro.telemetry import flight, profiler
from repro.matching import PatternSet

from .._perf import measure_pair, skip_if_loaded

PATTERNS = ["ab{10}c", "x[0-9]{4}y", "zq"]
DATA = (b"abbbbbbbbbbc x0123y zq padding " * 40)
ROUNDS = 7


def _raw_scan(pattern_set, data):
    """The un-instrumented baseline: PatternSet.feed's original loop."""
    for matcher in pattern_set._matchers:
        matcher.reset()
    out = []
    matchers = pattern_set._matchers
    for offset, symbol in enumerate(data):
        for pattern_id, matcher in enumerate(matchers):
            if matcher.step(symbol):
                out.append((pattern_id, offset))
    return out


def test_disabled_scan_overhead_within_bound():
    skip_if_loaded()
    assert not telemetry.enabled()
    ps = PatternSet(PATTERNS)

    # Warm both paths (allocation, caches) before timing.
    ps.scan(DATA)
    _raw_scan(ps, DATA)

    instrumented, baseline = measure_pair(
        lambda: ps.scan(DATA),
        lambda: _raw_scan(ps, DATA),
        rounds=ROUNDS,
    )

    # The disabled path is the identical loop plus one enabled() check per
    # scan, so 1.15x leaves ample room for timer noise; the absolute
    # epsilon guards tiny workloads on very fast machines.
    assert instrumented <= baseline * 1.15 + 1e-3, (
        f"disabled-telemetry scan {instrumented * 1e3:.3f} ms vs "
        f"uninstrumented baseline {baseline * 1e3:.3f} ms"
    )


def test_scan_results_match_baseline():
    ps = PatternSet(PATTERNS)
    scanned = [(m.pattern_id, m.end) for m in ps.scan(DATA)]
    assert scanned == _raw_scan(ps, DATA)


def _raw_fused_scan(pattern_set, data):
    """Un-instrumented fused baseline: FusedMatcher.feed from scratch."""
    fused = pattern_set._fused
    fused.reset()
    return fused.feed(data)


def test_disabled_profiler_and_flight_overhead_within_bound():
    """With profiler + flight off, the fused scan is the identical loop
    plus the shared per-chunk enablement check."""
    skip_if_loaded()
    assert not telemetry.enabled()
    assert not flight.flight_enabled()
    assert not profiler.profiling_enabled()
    ps = PatternSet(PATTERNS, engine="fused")

    ps.scan(DATA)
    _raw_fused_scan(ps, DATA)

    instrumented, baseline = measure_pair(
        lambda: ps.scan(DATA),
        lambda: _raw_fused_scan(ps, DATA),
        rounds=ROUNDS,
    )

    assert instrumented <= baseline * 1.15 + 1e-3, (
        f"disabled-profiler/flight fused scan {instrumented * 1e3:.3f} ms "
        f"vs uninstrumented baseline {baseline * 1e3:.3f} ms"
    )
