"""Telemetry tests mutate the global tracer/registry: reset around each."""

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def clean_telemetry():
    telemetry.disable()
    telemetry.reset()
    yield
    telemetry.disable()
    telemetry.reset()
