"""Flight recorder tests: bounded ring, determinism, failure postmortems.

The contract under test is the one the module docstring promises: the
ring never grows past its capacity, postmortems from two identical
failing runs are byte-identical once :data:`TIMING_KEYS` are stripped,
and every failure path — ReproError in the CLI, a killed shard worker,
a quarantined pattern — leaves a parseable postmortem naming the
culprit when a dump dir is armed.
"""

import json
import os

import pytest

from repro.compiler import CompilerOptions, compile_pattern
from repro.matching import PatternSet, ShardedScanner
from repro.resilience.errors import ReproError
from repro.telemetry import flight
from repro.telemetry.flight import FlightRecorder, strip_timing


@pytest.fixture(autouse=True)
def flight_off():
    flight.disable()
    yield
    flight.disable()


def _compile_all(patterns):
    options = CompilerOptions(bv_size=8, unfold_threshold=2)
    return [
        compile_pattern(p, options=options, regex_id=i)
        for i, p in enumerate(patterns)
    ]


class TestRing:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=8)
        for i in range(100):
            recorder.record("tick", index=i)
        events = recorder.events()
        assert len(recorder) == 8
        assert [e["index"] for e in events] == list(range(92, 100))
        # Total recorded count survives rollover.
        assert recorder.postmortem("test")["events_recorded"] == 100

    def test_events_carry_seq_and_kind(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("a", x=1)
        recorder.record("b", y=2)
        events = recorder.events()
        assert [e["kind"] for e in events] == ["a", "b"]
        assert [e["seq"] for e in events] == [1, 2]
        assert all("wall_s" in e for e in events)

    def test_note_state_is_a_slot_not_an_event(self):
        recorder = FlightRecorder(capacity=4)
        recorder.note_state(active=3)
        recorder.note_state(active=7)
        assert len(recorder) == 0
        assert recorder.postmortem("x")["last_engine_state"] == {"active": 7}

    def test_disabled_facade_is_inert(self, tmp_path):
        assert not flight.flight_enabled()
        before = len(flight.recorder())
        flight.record("ignored")
        flight.note_state(ignored=True)
        assert len(flight.recorder()) == before
        assert flight.auto_dump("nope") is None
        assert list(tmp_path.iterdir()) == []

    def test_auto_dump_requires_dump_dir(self):
        flight.enable(dump_dir=None)
        flight.record("something")
        assert flight.auto_dump("no-dir") is None


class TestStripTiming:
    def test_removes_timing_keys_deeply(self):
        doc = {
            "wall_s": 1.0,
            "dumped_at_s": 2.0,
            "events": [
                {"seq": 1, "wall_s": 3.0, "busy_s": 0.5, "kind": "a"},
                {"seq": 2, "elapsed_s": 4.0, "nested": {"wall_s": 5.0}},
            ],
            "keep": "me",
        }
        stripped = strip_timing(doc)
        assert stripped == {
            "events": [
                {"seq": 1, "kind": "a"},
                {"seq": 2, "nested": {}},
            ],
            "keep": "me",
        }
        # Original is untouched (deep copy semantics).
        assert doc["events"][0]["wall_s"] == 3.0


class TestEngineEvents:
    def test_quarantine_recorded(self):
        flight.enable()
        PatternSet(["ab", "(ab"], on_error="quarantine")
        kinds = [e["kind"] for e in flight.recorder().events()]
        assert "quarantine" in kinds
        event = next(
            e for e in flight.recorder().events()
            if e["kind"] == "quarantine"
        )
        assert event["pattern_id"] == 1
        assert event["error_code"] == "E_SYNTAX"

    def test_scan_chunk_and_state_recorded(self):
        flight.enable()
        ps = PatternSet(["ab{2}c"], engine="fused")
        ps.scan(b"xabbc" * 10)
        events = flight.recorder().events()
        chunk = next(e for e in events if e["kind"] == "scan_chunk")
        assert chunk["engine"] == "fused"
        assert chunk["symbols"] == 50
        assert chunk["matches"] == 10
        state = flight.recorder().postmortem("x")["last_engine_state"]
        assert state is not None
        assert "cache_hits" in state

    def test_shard_failure_dumps_postmortem_naming_shard(self, tmp_path):
        """Acceptance: SIGKILL a shard worker under --flight-dir and the
        postmortem parses and names the failed shard."""
        flight.enable(dump_dir=str(tmp_path))
        compiled = _compile_all(["ax", "bx"])
        with ShardedScanner(compiled, num_shards=2) as scanner:
            scanner.feed(b"ax bx " * 20)
            scanner.inject_fault(1, mode="die")
            scanner.feed(b"ax bx " * 20)
            assert scanner.failures
        dumps = sorted(tmp_path.iterdir())
        assert dumps, "shard failure must leave a postmortem"
        doc = json.loads(dumps[0].read_text())
        assert doc["reason"].startswith("shard-1-")
        failure = next(
            e for e in doc["events"] if e["kind"] == "shard_failure"
        )
        assert failure["shard"] == 1
        assert failure["pattern_ids"] == [1]
        assert "shard-1" in dumps[0].name

    def test_budget_deadline_recorded(self):
        from repro.resilience.budget import Budget

        flight.enable()
        clock = Budget(deadline_s=0.0).start()
        with pytest.raises(ReproError):
            clock.check("scan")
        events = flight.recorder().events()
        event = next(e for e in events if e["kind"] == "budget_exceeded")
        assert event["phase"] == "scan"
        assert event["budget_kind"] == "deadline"
        assert event["limit"] == 0.0


class TestDeterminism:
    def _failing_run(self, tmp_path, name):
        """One CLI scan that fails with E_SYNTAX under --flight-dir."""
        from repro.cli import main

        dump_dir = tmp_path / name
        input_path = tmp_path / "input.bin"
        if not input_path.exists():
            input_path.write_bytes(b"ab " * 50)
        code = main(
            [
                "scan",
                "ab",
                "(ab",
                "-i",
                str(input_path),
                "--flight-dir",
                str(dump_dir),
            ]
        )
        assert code != 0
        dumps = sorted(dump_dir.iterdir())
        assert len(dumps) == 1
        return dumps[0]

    def test_identical_failing_scans_dump_identically(self, tmp_path):
        first = self._failing_run(tmp_path, "run-a")
        second = self._failing_run(tmp_path, "run-b")
        assert first.name == second.name
        doc_a = json.loads(first.read_text())
        doc_b = json.loads(second.read_text())
        assert strip_timing(doc_a) == strip_timing(doc_b)
        assert doc_a["error"]["code"] == "E_SYNTAX"

    def test_postmortem_document_shape(self, tmp_path):
        flight.enable(dump_dir=str(tmp_path))
        flight.record("scan_chunk", engine="fused", symbols=10, matches=0)
        error = ReproError("boom")
        path = flight.auto_dump("unit-test", error)
        doc = json.loads(open(path).read())
        assert doc["version"] == flight.POSTMORTEM_VERSION
        assert doc["reason"] == "unit-test"
        assert doc["error"]["code"] == "E_REPRO"
        assert doc["error"]["message"] == "boom"
        assert doc["capacity"] == flight.DEFAULT_CAPACITY
        assert doc["events"][0]["kind"] == "scan_chunk"

    def test_dump_filenames_are_deterministic(self, tmp_path):
        flight.enable(dump_dir=str(tmp_path))
        first = flight.auto_dump("shard-0-died")
        second = flight.auto_dump("shard-0-died")
        assert os.path.basename(first) == "flight-shard-0-died-001.json"
        assert os.path.basename(second) == "flight-shard-0-died-002.json"


class TestDumpRotation:
    """``flight-*.json`` files per dump dir are capped; oldest go first."""

    def test_rotation_keeps_only_newest(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path), max_dumps=3)
        paths = []
        for i in range(6):
            recorder.record("tick", index=i)
            path = recorder.dump(f"reason{i}")
            os.utime(path, (i, i))  # deterministic ages
            paths.append(os.path.basename(path))
        kept = sorted(
            n for n in os.listdir(tmp_path) if n.startswith("flight-")
        )
        assert len(kept) == 3
        assert set(kept) == set(paths[3:])

    def test_rotation_ignores_foreign_files(self, tmp_path):
        (tmp_path / "flight-manual.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("keep me")
        recorder = FlightRecorder(dump_dir=str(tmp_path), max_dumps=1)
        os.utime(tmp_path / "flight-manual.json", (0, 0))
        recorder.dump("crash")
        names = sorted(os.listdir(tmp_path))
        assert "notes.txt" in names
        assert "flight-manual.json" not in names
        assert sum(n.startswith("flight-") for n in names) == 1

    def test_max_dumps_none_disables_rotation(self, tmp_path):
        recorder = FlightRecorder(dump_dir=str(tmp_path), max_dumps=None)
        for i in range(5):
            recorder.dump(f"r{i}")
        assert (
            sum(n.startswith("flight-") for n in os.listdir(tmp_path)) == 5
        )

    def test_max_dumps_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_dumps=0)

    def test_enable_passes_max_dumps_through(self, tmp_path):
        recorder = flight.enable(dump_dir=str(tmp_path), max_dumps=2)
        try:
            assert recorder.max_dumps == 2
            for i in range(4):
                flight.record("tick", index=i)
                flight.auto_dump(f"r{i}")
            kept = [
                n for n in os.listdir(tmp_path) if n.startswith("flight-")
            ]
            assert len(kept) == 2
        finally:
            flight.disable()
