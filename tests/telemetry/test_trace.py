"""Tracer unit tests: nesting, thread-local context, exporters."""

import json
import threading

import pytest

from repro import telemetry
from repro.telemetry.trace import NULL_SPAN, Tracer


class TestSpans:
    def test_records_name_and_duration(self):
        tracer = Tracer()
        with tracer.span("work", "test", regex_id=7):
            pass
        (record,) = tracer.records()
        assert record.name == "work"
        assert record.category == "test"
        assert record.args == {"regex_id": 7}
        assert record.duration_us >= 0.0

    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        outer = by_name["outer"]
        assert outer.parent_id is None
        assert by_name["inner"].parent_id == outer.span_id
        assert by_name["sibling"].parent_id == outer.span_id

    def test_children_close_before_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [r.name for r in tracer.records()]
        assert names == ["inner", "outer"]

    def test_set_attaches_args_mid_span(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.set(states=12)
        (record,) = tracer.records()
        assert record.args["states"] == 12

    def test_thread_local_stacks_are_independent(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def worker(label):
            with tracer.span(label):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.records()
        assert len(records) == 2
        # Concurrent roots: neither thread saw the other as its parent.
        assert all(r.parent_id is None for r in records)

    def test_exception_still_records_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [r.name for r in tracer.records()] == ["doomed"]

    def test_summary_aggregates_per_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        summary = tracer.summary()
        assert summary["phase"]["count"] == 3
        assert summary["phase"]["total_us"] >= summary["phase"]["max_us"]

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0


class TestExportFormats:
    def test_chrome_document_shape(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", "cat2", k=1):
                pass
        doc = tracer.to_chrome()
        assert set(doc) >= {"traceEvents", "displayTimeUnit"}
        for event in doc["traceEvents"]:
            assert event["ph"] == "X"
            assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)
        # the document is valid JSON end to end
        json.loads(json.dumps(doc))

    def test_jsonl_lines_parse(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        lines = tracer.to_jsonl().splitlines()
        objs = [json.loads(line) for line in lines]
        assert [o["name"] for o in objs] == ["a", "b"]
        assert all("start_s" in o and "duration_us" in o for o in objs)


class TestGlobalFacade:
    def test_disabled_by_default_returns_null_span(self):
        assert not telemetry.enabled()
        assert telemetry.span("anything", key="value") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            assert span.set(x=1) is NULL_SPAN
        assert len(telemetry.tracer()) == 0

    def test_enable_records_through_facade(self):
        telemetry.enable()
        with telemetry.span("visible"):
            pass
        assert [r.name for r in telemetry.tracer().records()] == ["visible"]

    def test_session_restores_previous_state(self):
        assert not telemetry.enabled()
        with telemetry.session():
            assert telemetry.enabled()
            with telemetry.span("inside"):
                pass
        assert not telemetry.enabled()
        # data survives the session for export
        assert len(telemetry.tracer()) == 1

    def test_session_fresh_clears_old_data(self):
        telemetry.enable()
        with telemetry.span("stale"):
            pass
        telemetry.disable()
        with telemetry.session(fresh=True):
            pass
        assert len(telemetry.tracer()) == 0

    def test_snapshot_includes_span_summary(self):
        with telemetry.session():
            with telemetry.span("phase"):
                pass
            snap = telemetry.snapshot()
        assert snap["spans"]["phase"]["count"] == 1
