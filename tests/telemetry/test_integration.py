"""End-to-end telemetry: CLI exports and stack instrumentation.

The first test is the PR's acceptance criterion: one `simulate` run with
``--trace-out``/``--metrics-out`` must yield a valid Chrome trace and a
metrics snapshot carrying per-phase compile spans, per-tile BVM
activations, per-array stall cycles, and an occupancy histogram.
"""

import json

import pytest

from repro import telemetry
from repro.cli import main
from repro.compiler import compile_ruleset
from repro.hardware.simulator import (
    BaselineSimulator,
    BVAPSimulator,
    compile_baseline,
)
from repro.hardware.specs import CAMA_SPEC
from repro.hardware.tile import TileEngine
from repro.matching import PatternSet

COMPILE_PHASES = (
    "compile.parse",
    "compile.encode",
    "compile.rewrite",
    "compile.translate",
    "compile.map",
)


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(b"xx" + b"a" + b"b" * 20 + b"c" + b"yy")
    return str(path)


class TestCLIAcceptance:
    def test_simulate_writes_trace_and_metrics(self, tmp_path, input_file):
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        exit_code = main(
            [
                "simulate", "ab{20}c", "-i", input_file, "--arch", "BVAP",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert exit_code == 0

        # --- valid Chrome trace-event JSON ---
        trace = json.loads(trace_path.read_text())
        assert isinstance(trace["traceEvents"], list) and trace["traceEvents"]
        for event in trace["traceEvents"]:
            assert event["ph"] == "X"
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
        names = {event["name"] for event in trace["traceEvents"]}
        assert set(COMPILE_PHASES) <= names
        assert "sim.run" in names

        # --- metrics snapshot with the required keys ---
        snap = json.loads(metrics_path.read_text())
        for phase in COMPILE_PHASES:
            assert phase in snap["spans"], phase
            assert snap["spans"][phase]["count"] >= 1
        counters = snap["counters"]
        tile_keys = [
            k for k in counters if k.startswith("sim.tile.bvm_activations")
        ]
        assert tile_keys, counters
        assert any(counters[k] > 0 for k in tile_keys)  # ab{20} activates BVs
        array_keys = [
            k for k in counters if k.startswith("sim.array.stall_cycles")
        ]
        assert array_keys, counters
        occupancy = snap["histograms"]["sim.active_states"]
        assert occupancy["count"] == 26  # one observation per symbol
        assert len(occupancy["counts"]) == len(occupancy["bounds"]) + 1

    def test_trace_verb(self, tmp_path, input_file, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)  # default trace.json lands here
        assert main(["trace", "ab{20}c", "-i", input_file]) == 0
        out = capsys.readouterr().out
        assert "compile.ruleset" in out  # span breakdown table printed
        assert (tmp_path / "trace.json").exists()

    def test_jsonl_trace_format(self, tmp_path, input_file):
        trace_path = tmp_path / "trace.jsonl"
        main(
            [
                "scan", "ab{20}c", "-i", input_file,
                "--trace-out", str(trace_path), "--trace-format", "jsonl",
            ]
        )
        names = [
            json.loads(line)["name"]
            for line in trace_path.read_text().splitlines()
        ]
        assert "compile.parse" in names
        assert "engine.scan" in names

    def test_telemetry_disabled_after_cli_run(self, tmp_path, input_file):
        main(
            [
                "simulate", "a", "-i", input_file,
                "--metrics-out", str(tmp_path / "m.json"),
            ]
        )
        assert not telemetry.enabled()


class TestLibraryInstrumentation:
    def test_compile_phases_traced(self):
        with telemetry.session():
            compile_ruleset(["ab{5}c", "x{3}"])
            snap = telemetry.snapshot()
        for phase in COMPILE_PHASES:
            assert phase in snap["spans"], phase
        # parse/rewrite/translate run once per pattern
        assert snap["spans"]["compile.parse"]["count"] == 2
        assert snap["counters"]["compile.patterns"] == 2
        assert snap["counters"]["compile.rejected"] == 0

    def test_rejected_patterns_counted(self):
        with telemetry.session():
            compile_ruleset(["ok", "((("])
            snap = telemetry.snapshot()
        assert snap["counters"]["compile.rejected"] == 1

    @pytest.mark.parametrize("engine", ["ah", "nbva", "nca", "nfa"])
    def test_engine_metrics(self, engine):
        ps = PatternSet(["ab{3}c"], engine=engine)
        data = b"zabbbc zabbbc"
        with telemetry.session():
            matches = ps.scan(data)
            snap = telemetry.snapshot()
        assert len(matches) == 2
        assert snap["counters"]["engine.symbols_scanned"] == len(data)
        assert snap["counters"]["engine.matches_emitted"] == 2
        occupancy = snap["histograms"]["engine.active_states"]
        assert occupancy["count"] == len(data)
        assert occupancy["max"] >= 1  # something was active mid-pattern
        assert snap["spans"]["engine.scan"]["count"] == 1

    def test_engine_match_stream_unchanged_by_telemetry(self):
        ps = PatternSet(["ab{3}c", "zz"])
        data = b"xabbbc zz abbbc"
        plain = [(m.pattern_id, m.end) for m in ps.scan(data)]
        with telemetry.session():
            traced = [(m.pattern_id, m.end) for m in ps.scan(data)]
        assert plain == traced

    def test_simulator_report_carries_snapshot(self):
        ruleset = compile_ruleset(["ab{20}c"])
        data = b"a" + b"b" * 20 + b"c"
        with telemetry.session():
            report = BVAPSimulator(ruleset).run(data)
        snap = report.metrics_snapshot
        assert snap is not None
        assert snap["counters"]["sim.symbols"] == len(data)
        assert snap["counters"]["sim.matches"] == 1
        # the snapshot survives a JSON round trip through notes
        restored = json.loads(json.dumps(report.notes))["metrics"]
        assert restored == snap

    def test_simulator_live_progress_gauge(self):
        ruleset = compile_ruleset(["ab{4}c"])
        with telemetry.session():
            BVAPSimulator(ruleset).run(b"abbbbc")
            gauge = telemetry.registry().gauge("sim.progress_symbols")
        assert gauge.value == 6

    def test_baseline_simulator_snapshot(self):
        with telemetry.session():
            report = BaselineSimulator(
                CAMA_SPEC, compile_baseline(["ab{5}c"])
            ).run(b"abbbbbc")
        snap = report.metrics_snapshot
        assert snap["counters"]["sim.symbols"] == 7
        assert "sim.active_states" in snap["histograms"]

    def test_tile_engine_occupancy(self):
        from repro.compiler.pipeline import compile_pattern

        compiled = compile_pattern("ab{3}c")
        tile = TileEngine([(0, compiled.ah)], tile_index=4)
        with telemetry.session():
            tile.match_stream(b"abbbc")
            hist = telemetry.registry().get("tile.occupancy", tile=4)
        assert hist is not None
        assert hist["count"] == 5

    def test_disabled_runs_leave_no_trace(self):
        assert not telemetry.enabled()
        ruleset = compile_ruleset(["ab{4}c"])
        report = BVAPSimulator(ruleset).run(b"abbbbc")
        assert report.metrics_snapshot is None
        assert len(telemetry.tracer()) == 0
        assert telemetry.registry().snapshot()["counters"] == {}
