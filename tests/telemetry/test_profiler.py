"""Scan-path profiler tests: parity, attribution invariants, artifact.

The profiler's cardinal rule is that profiling must never change the
match stream — every test here scans the same input with and without an
active profiler and compares streams exactly — and its attribution
invariants (shares sum to ~1, heatmap covers the input) are what the
``profile`` CLI verb's acceptance rests on.
"""

import json

import pytest

from repro.matching import PatternSet
from repro.telemetry import profiler
from repro.telemetry.profiler import (
    ScanProfile,
    ScanProfiler,
    byte_class_ids,
    load_profile,
)
from repro.workloads import PROFILES, dataset_stream, load_dataset

import random

PATTERNS = ["ab{3}c", "x[0-9]{2}y", "zq+", "[a-f]{4}"]
DATA = b"zabbbc x12y zqqq abcdef " * 80


@pytest.fixture(autouse=True)
def no_leftover_profiler():
    profiler.stop_profile()
    yield
    profiler.stop_profile()


def _scan(engine="fused", prof=False, **kwargs):
    ps = PatternSet(PATTERNS, engine=engine, **kwargs)
    with ps:
        if prof:
            with profiler.profile_session(
                stride=16, input_len=len(DATA)
            ) as active:
                matches = ps.scan(DATA)
            return matches, active.finish(engine=engine)
        return ps.scan(DATA), None


class TestByteClasses:
    def test_identical_masks_pool(self):
        classes, count = byte_class_ids([0, 1, 0, 1, 2])
        assert classes == [0, 1, 0, 1, 2]
        assert count == 3

    def test_all_256_bytes_covered(self):
        ps = PatternSet(PATTERNS, engine="fused")
        classes, count = byte_class_ids(ps._fused._match_masks)
        assert len(classes) == 256
        assert count >= 2
        assert set(classes) == set(range(count))


class TestMatchParity:
    def test_fused_stream_unchanged_by_profiling(self):
        plain, _ = _scan("fused")
        profiled, _ = _scan("fused", prof=True)
        assert [(m.pattern_id, m.end) for m in profiled] == [
            (m.pattern_id, m.end) for m in plain
        ]

    def test_sharded_inline_stream_unchanged(self):
        plain, _ = _scan("sharded", shards=2, shard_backend="inline")
        profiled, _ = _scan(
            "sharded", prof=True, shards=2, shard_backend="inline"
        )
        assert [(m.pattern_id, m.end) for m in profiled] == [
            (m.pattern_id, m.end) for m in plain
        ]

    def test_streaming_feed_parity(self):
        """Chunked feeds sample at stream offsets, same match stream."""
        ps_plain = PatternSet(PATTERNS, engine="fused")
        plain = []
        base = 0
        for start in range(0, len(DATA), 77):
            chunk = DATA[start : start + 77]
            plain += [
                (m.pattern_id, base + m.end) for m in ps_plain.feed(chunk)
            ]
            base += len(chunk)
        ps_prof = PatternSet(PATTERNS, engine="fused")
        profiled = []
        base = 0
        with profiler.profile_session(stride=16):
            for start in range(0, len(DATA), 77):
                chunk = DATA[start : start + 77]
                profiled += [
                    (m.pattern_id, base + m.end)
                    for m in ps_prof.feed(chunk)
                ]
                base += len(chunk)
        assert profiled == plain

    def test_anchored_stream_unchanged_by_profiling(self):
        """Anchored automata take the gated sampled-step path (one-byte
        ``feed``); start gates, ``$`` finalisation, and ``\\b`` seam
        dedup must survive profiling byte-for-byte."""
        patterns = ["^zab{3}c", r"\bx[0-9]{2}y\b", "zq+$", "[a-f]{4}"]
        data = b"zabbbc x12y zqqq abcdef " * 40 + b"zqq"
        plain_ps = PatternSet(patterns, engine="fused")
        with plain_ps:
            plain = [(m.pattern_id, m.end) for m in plain_ps.scan(data)]
        assert plain  # the corpus must actually fire through the gates
        prof_ps = PatternSet(patterns, engine="fused")
        with prof_ps:
            with profiler.profile_session(stride=16) as active:
                profiled = [
                    (m.pattern_id, m.end) for m in prof_ps.scan(data)
                ]
                profile = active.finish(engine="fused")
        assert profiled == plain
        assert profile.samples > 0


class TestAttribution:
    def test_shares_sum_to_one(self):
        _, profile = _scan("fused", prof=True)
        shares = sum(r["activation_share"] for r in profile.patterns)
        times = sum(r["time_share"] for r in profile.patterns)
        assert shares == pytest.approx(1.0)
        assert times == pytest.approx(1.0)

    def test_rows_sorted_by_activation(self):
        _, profile = _scan("fused", prof=True)
        shares = [r["activation_share"] for r in profile.patterns]
        assert shares == sorted(shares, reverse=True)

    def test_every_pattern_has_a_row(self):
        _, profile = _scan("fused", prof=True)
        assert {r["pattern_id"] for r in profile.patterns} == set(
            range(len(PATTERNS))
        )

    def test_heatmap_nonempty_and_covers_input(self):
        _, profile = _scan("fused", prof=True)
        density = profile.heatmap["density"]
        assert density
        bucket = profile.heatmap["bucket_bytes"]
        assert (len(density) - 1) * bucket < len(DATA)
        assert any(d > 0 for d in density)

    def test_cache_series_recorded(self):
        _, profile = _scan("fused", prof=True)
        series = profile.cache["series"]
        assert series
        assert profile.cache["hits"] + profile.cache["misses"] > 0
        assert 0.0 <= profile.cache["hit_ratio"] <= 1.0
        offsets = [p["offset"] for p in series]
        assert offsets == sorted(offsets)

    def test_byte_classes_have_costs(self):
        _, profile = _scan("fused", prof=True)
        assert profile.byte_classes
        for row in profile.byte_classes:
            assert row["sampled"] >= 1
            assert row["mean_us"] >= 0.0
        totals = [c["total_us"] for c in profile.byte_classes]
        assert totals == sorted(totals, reverse=True)

    def test_sharded_inline_merges_by_global_id(self):
        _, profile = _scan(
            "sharded", prof=True, shards=2, shard_backend="inline"
        )
        assert {r["pattern_id"] for r in profile.patterns} == set(
            range(len(PATTERNS))
        )
        assert sum(
            r["activation_share"] for r in profile.patterns
        ) == pytest.approx(1.0)
        scopes = {c["scope"] for c in profile.byte_classes}
        assert all(s.startswith("shard-") for s in scopes)
        assert len(scopes) == 2

    def test_series_stays_bounded(self):
        prof = ScanProfiler(stride=1, input_len=1 << 16)
        ps = PatternSet(["ab"], engine="fused")
        data = b"ab" * (1 << 15)
        profiler._active = prof
        try:
            ps.scan(data)
        finally:
            profiler.stop_profile()
        assert len(prof._series) <= profiler.MAX_SERIES_POINTS + 1


class TestArtifact:
    def test_round_trip(self, tmp_path):
        _, profile = _scan("fused", prof=True)
        path = str(tmp_path / "profile.json")
        profile.write(path)
        loaded = load_profile(path)
        assert loaded.to_json() == profile.to_json()
        raw = json.load(open(path))
        assert raw["artifact"] == "ScanProfile"
        assert raw["version"] == 1

    def test_pattern_sources_included(self):
        ps = PatternSet(PATTERNS, engine="fused")
        with profiler.profile_session(stride=16) as prof:
            ps.scan(DATA)
        profile = prof.finish(patterns=dict(enumerate(PATTERNS)))
        by_id = {r["pattern_id"]: r for r in profile.patterns}
        for i, pattern in enumerate(PATTERNS):
            assert by_id[i]["pattern"] == pattern


class TestCLI:
    def test_profile_verb_regexlib(self, tmp_path):
        """The acceptance flow: profile a RegexLib workload, shares sum
        to ~1.0, heatmap non-empty."""
        from repro.cli import main

        patterns = load_dataset("RegexLib", 8, 1)
        data = dataset_stream(
            patterns,
            random.Random(1),
            8192,
            PROFILES["RegexLib"].literal_pool,
        )
        input_path = tmp_path / "input.bin"
        input_path.write_bytes(data)
        patterns_path = tmp_path / "patterns.txt"
        patterns_path.write_text("\n".join(patterns) + "\n")
        out = tmp_path / "p.json"
        assert (
            main(
                [
                    "profile",
                    f"@{patterns_path}",
                    "-i",
                    str(input_path),
                    "--profile-out",
                    str(out),
                ]
            )
            == 0
        )
        profile = json.load(open(out))
        assert profile["artifact"] == "ScanProfile"
        shares = sum(
            r["activation_share"] for r in profile["patterns"]
        )
        assert shares == pytest.approx(1.0, abs=1e-6)
        assert any(d > 0 for d in profile["heatmap"]["density"])

    def test_profile_summary_table_renders(self):
        from repro.analysis.report import profile_summary_table

        _, profile = _scan("fused", prof=True)
        table = profile_summary_table(profile.to_json())
        assert "activation" in table
        assert "lazy-DFA cache" in table

    def test_join_profile_metrics(self):
        from repro import telemetry
        from repro.analysis.report import join_profile_metrics

        with telemetry.session():
            _, profile = _scan("fused", prof=True)
            snapshot = telemetry.snapshot()
        joined = join_profile_metrics(profile.to_json(), snapshot)
        assert joined["profile.pattern.0.activation_share"] >= 0.0
        assert "telemetry.engine.symbols_scanned" in joined
