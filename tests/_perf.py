"""Shared plumbing for the timing-guard tests.

The perf guards (fused-vs-per-pattern speedup, telemetry overhead,
resilience overhead) compare two workloads timed in the same process.
Two things make such guards flaky on shared CI machines and this module
exists to fix both:

1. **A single best-of sample is fragile.** One scheduler preemption
   during the "fast" side's window flips the verdict.
   :func:`measure_pair` therefore takes the *median of three* complete
   interleaved best-of measurements — a spike must hit the same side in
   two independent passes to survive into the compared figure.

2. **A loaded machine has no quiet window at all.** When the 1-minute
   load average already exceeds the core count there is nothing a
   robust estimator can do; :func:`skip_if_loaded` skips the guard
   outright rather than producing a coin-flip failure.
"""

import os
import statistics
import time

import pytest

#: Independent interleaved measurement passes; the median is compared.
SAMPLES = 3


def skip_if_loaded(headroom: float = 1.5) -> None:
    """Skip the calling test when the machine is too busy to time on.

    ``headroom`` is how many runnable tasks per core are tolerated; CI
    boxes running parallel jobs routinely sit above it, and on such a
    machine a relative timing bound is noise, not signal.
    """
    try:
        load = os.getloadavg()[0]
    except (AttributeError, OSError):  # platform without getloadavg
        return
    cores = os.cpu_count() or 1
    if load > cores * headroom:
        pytest.skip(
            f"1-minute load {load:.1f} exceeds {cores} core(s) x "
            f"{headroom} — timing guard would be unreliable"
        )


def _best_of(func, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def measure_pair(first, second, rounds: int = 5, samples: int = SAMPLES):
    """Median-of-``samples`` interleaved best-of times for two workloads.

    Within each sample the two callables alternate round by round, so
    slow machine phases hit both sides; across samples the median drops
    any single-pass outlier.  Returns ``(first_s, second_s)``.
    """
    first_times = []
    second_times = []
    for _ in range(samples):
        first_best = float("inf")
        second_best = float("inf")
        for _ in range(rounds):
            first_best = min(first_best, _best_of(first, 1))
            second_best = min(second_best, _best_of(second, 1))
        first_times.append(first_best)
        second_times.append(second_best)
    return statistics.median(first_times), statistics.median(second_times)
