"""Regex → NBVA translation tests (§3/§4 action assignment)."""

import pytest

from repro.automata.actions import (
    Copy,
    ReadBit,
    ReadBitSet1,
    ReadRange,
    ReadRangeSet1,
    Set1,
    Shift,
)
from repro.compiler.translate import TranslationError, translate
from repro.regex import ast
from repro.regex.parser import parse
from repro.regex.rewrite import RewriteParams, rewrite

P = RewriteParams(bv_size=64, unfold_threshold=4)
P8 = RewriteParams(bv_size=8, unfold_threshold=2)


def build(pattern, params=P):
    return translate(rewrite(parse(pattern), params), params)


def actions_between(nbva):
    return {
        (t.src, t.dst): type(t.action).__name__ for t in nbva.transitions
    }


class TestStateSpace:
    def test_linear_in_regex_size(self):
        """One control state per character-class occurrence (§1)."""
        nbva = build("ab{5000}c")
        # b{5000} splits into ceil(5000/64)=79 blocks: 79 + a + c states
        assert nbva.num_states == 79 + 2

    def test_counting_states_have_bv(self):
        nbva = build("ab{40}c")
        counting = [s for s in nbva.states if s.is_counting()]
        assert len(counting) == 1
        assert counting[0].width == 40

    def test_multi_position_body(self):
        nbva = build("(ab){8}")
        assert nbva.num_counting_states() == 2
        assert all(s.width == 8 for s in nbva.states if s.is_counting())


class TestActionAssignment:
    def test_entry_is_set1(self):
        nbva = build("ab{8}c")
        a, b = 0, 1
        acts = actions_between(nbva)
        assert acts[(a, b)] == "Set1"

    def test_loopback_is_shift(self):
        nbva = build("ab{8}c")
        acts = actions_between(nbva)
        assert acts[(1, 1)] == "Shift"

    def test_exit_exact_is_read_bit(self):
        nbva = build("ab{8}c")
        acts = actions_between(nbva)
        assert acts[(1, 2)] == "ReadBit"
        exit_action = next(
            t.action for t in nbva.transitions if (t.src, t.dst) == (1, 2)
        )
        assert exit_action.position == 8

    def test_exit_range_is_read_range(self):
        nbva = build("ab{1,8}c")
        reads = [
            t.action
            for t in nbva.transitions
            if isinstance(t.action, ReadRange)
        ]
        assert reads and reads[0].high == 8

    def test_block_chain_uses_read_set1(self):
        nbva = build("ab{128}c")  # two 64-blocks
        chained = [
            t.action
            for t in nbva.transitions
            if isinstance(t.action, ReadBitSet1)
        ]
        assert len(chained) == 1
        assert chained[0].position == 64

    def test_within_iteration_is_copy(self):
        nbva = build("(ab){8}")
        acts = actions_between(nbva)
        assert acts[(0, 1)] == "Copy"
        assert acts[(1, 0)] == "Shift"

    def test_exit_and_reenter_through_plus(self):
        nbva = build("(a{8})+b")
        combo = [
            t.action
            for t in nbva.transitions
            if isinstance(t.action, ReadBitSet1)
        ]
        assert combo and combo[0].position == 8

    def test_inner_star_inside_scope_is_copy(self):
        nbva = build("(ab*c){8}d")
        acts = actions_between(nbva)
        b = 1
        assert acts[(b, b)] == "Copy"


class TestInitialAndFinal:
    def test_initial_injection(self):
        nbva = build("ab")
        assert nbva.initial == {0: 1}

    def test_counting_first_position_injected(self):
        nbva = build("a{8}b")
        assert 0 in nbva.initial

    def test_plain_final_condition(self):
        nbva = build("ab")
        assert isinstance(nbva.final[1], ReadBit)
        assert nbva.final[1].position == 1

    def test_counting_final_condition(self):
        nbva = build("ab{8}")
        assert isinstance(nbva.final[1], ReadBit)
        assert nbva.final[1].position == 8

    def test_range_final_condition(self):
        nbva = build("ab{1,8}")
        assert isinstance(nbva.final[1], ReadRange)
        assert nbva.final[1].high == 8


class TestErrors:
    def test_unsupported_repeat_rejected(self):
        with pytest.raises(TranslationError):
            translate(parse("a{100}"), P)  # not rewritten

    def test_nested_scope_rejected(self):
        inner = ast.repeat(parse("a"), 8, 8)
        nested = ast.repeat(ast.concat(inner, parse("b")), 8, 8)
        with pytest.raises(TranslationError):
            translate(nested, P)

    def test_unbounded_repeat_rejected(self):
        with pytest.raises(TranslationError):
            translate(ast.Repeat(parse("a"), 5, None), P)


class TestExamplePaperSection4:
    def test_ab_2_5_cd_6_e(self):
        """ab{2,5}(cd){6}e (§4): after the {m,n} -> {m-1}{1,n-m+1}
        rewrite, reads are r(·) and r(1,·) only."""
        nbva = build("ab{2,5}(cd){6}e", P8)
        read_types = {
            type(t.action).__name__
            for t in nbva.transitions
            if t.action.reads_source
        }
        assert read_types <= {
            "ReadBit",
            "ReadRange",
            "ReadBitSet1",
            "ReadRangeSet1",
        }
        data = b"abbbb" + b"cd" * 6 + b"e"
        assert nbva.match_ends(data) == [len(data) - 1]
