"""RCB/FCB sparsity-analysis tests (§6)."""

import pytest

from repro.compiler import CompilerOptions, compile_pattern, compile_ruleset
from repro.compiler.sparsity import (
    RCB_MAX_MEAN_FANIN,
    SparsityProfile,
    decide_fcb_tiles,
    fcb_pairs_for_ruleset,
    profile_automaton,
)


class TestProfile:
    def test_linear_chain_is_sparse(self):
        compiled = compile_pattern("abcdef")
        profile = profile_automaton(compiled.ah)
        assert profile.mean_fanin <= 1.0
        assert not profile.needs_fcb

    def test_counting_regex_is_sparse(self):
        compiled = compile_pattern("ab{500}c")
        assert not profile_automaton(compiled.ah).needs_fcb

    def test_dense_alternation_profile(self):
        # 12-way alternation repeated: every branch end feeds every start.
        # Compiled unreduced — the quotient pass would (correctly) merge
        # the equivalent branch states away, and this test exercises the
        # profiler on the dense shape.
        branches = "|".join(f"{a}{b}" for a in "abcd" for b in "xyz")
        compiled = compile_pattern(
            f"({branches})+", options=CompilerOptions(reduce_level=0)
        )
        profile = profile_automaton(compiled.ah)
        assert profile.max_fanin >= 12

    def test_dense_alternation_reduces_to_sparse(self):
        # The same ruleset under the default reduce level collapses the
        # follow-equivalent branch states, dropping the dense fan-in.
        branches = "|".join(f"{a}{b}" for a in "abcd" for b in "xyz")
        compiled = compile_pattern(f"({branches})+")
        profile = profile_automaton(compiled.ah)
        assert profile.states < 12
        assert profile.max_fanin < 12

    def test_density(self):
        profile = SparsityProfile(states=10, edges=25, max_fanin=5)
        assert profile.density == 0.25
        assert profile.mean_fanin == 2.5

    def test_empty_automaton(self):
        profile = SparsityProfile(states=0, edges=0, max_fanin=0)
        assert profile.density == 0.0
        assert not profile.needs_fcb


class TestDecision:
    def test_sparse_tiles_stay_rcb(self):
        ruleset = compile_ruleset(["abc", "ab{60}c", "x[yz]{8}"])
        assert fcb_pairs_for_ruleset(ruleset) == []

    def test_dense_tile_flagged(self):
        dense = SparsityProfile(states=4, edges=4 * 16, max_fanin=70)
        sparse = SparsityProfile(states=10, edges=9, max_fanin=1)
        tiles = decide_fcb_tiles({0: [sparse], 1: [dense], 2: [sparse]})
        assert tiles == [1]

    def test_mean_fanin_threshold(self):
        over = SparsityProfile(
            states=10, edges=int(10 * (RCB_MAX_MEAN_FANIN + 1)), max_fanin=9
        )
        assert over.needs_fcb

    def test_pairs_derived_from_tiles(self):
        dense = SparsityProfile(states=4, edges=64, max_fanin=70)

        class FakeRegex:
            def __init__(self, rid):
                self.regex_id = rid
                self.ah = None

        # Simulate via decide_fcb_tiles directly (pairing rule).
        tiles = decide_fcb_tiles({5: [dense]})
        assert sorted({t // 2 for t in tiles}) == [2]
