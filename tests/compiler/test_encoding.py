"""Symbol-encoding schema tests (§7 step 2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler.encoding import build_encoding
from repro.regex.charclass import DIGIT, WORD, CharClass


class TestPartition:
    def test_no_classes_one_code(self):
        schema = build_encoding([])
        assert schema.num_codes == 1
        assert all(schema.encode_byte(b) == 0 for b in range(256))

    def test_single_class_two_codes(self):
        schema = build_encoding([DIGIT])
        assert schema.num_codes == 2
        assert schema.encode_byte(ord("5")) != schema.encode_byte(ord("x"))

    def test_disjoint_classes(self):
        a = CharClass.from_char(ord("a"))
        b = CharClass.from_char(ord("b"))
        schema = build_encoding([a, b])
        assert schema.num_codes == 3

    def test_overlapping_classes_split(self):
        schema = build_encoding([DIGIT, WORD])
        # cells: digits, word-minus-digits, rest
        assert schema.num_codes == 3

    def test_bytes_in_same_cell_share_code(self):
        schema = build_encoding([DIGIT])
        codes = {schema.encode_byte(b) for b in range(ord("0"), ord("9") + 1)}
        assert len(codes) == 1

    def test_deterministic_order(self):
        one = build_encoding([DIGIT, WORD])
        two = build_encoding([DIGIT, WORD])
        assert one.code_of_byte == two.code_of_byte


class TestEncoding:
    def test_encode_stream(self):
        schema = build_encoding([CharClass.from_char(ord("a"))])
        codes = schema.encode(b"aba")
        assert codes[0] == codes[2] != codes[1]

    def test_encode_class_exact(self):
        schema = build_encoding([DIGIT, WORD])
        digit_codes = schema.encode_class(DIGIT)
        assert schema.is_exact_for(DIGIT)
        # every digit byte encodes to a code in the class's code set
        for b in range(ord("0"), ord("9") + 1):
            assert schema.encode_byte(b) in digit_codes

    def test_is_exact_for_detects_misaligned(self):
        schema = build_encoding([WORD])
        assert not schema.is_exact_for(DIGIT)  # digits not a whole cell

    def test_code_bits(self):
        schema = build_encoding([DIGIT])
        assert schema.code_bits == 1
        many = build_encoding([CharClass.from_char(i) for i in range(9)])
        assert many.code_bits == 4  # 10 codes


@given(
    st.lists(
        st.sets(st.integers(min_value=0, max_value=255), min_size=1),
        max_size=6,
    )
)
def test_partition_invariants(class_sets):
    classes = [CharClass.from_chars(s) for s in class_sets]
    schema = build_encoding(classes)
    # Group masks partition the alphabet.
    union = 0
    for mask in schema.group_masks:
        assert union & mask == 0
        union |= mask
    assert union == (1 << 256) - 1
    # Every generating class is a union of whole cells.
    for cc in classes:
        assert schema.is_exact_for(cc)
    # encode_byte is consistent with the masks.
    for code, mask in enumerate(schema.group_masks):
        lowest = (mask & -mask).bit_length() - 1
        assert schema.encode_byte(lowest) == code
