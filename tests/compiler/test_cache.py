"""Content-addressed compile cache: keys, layers, parallel compile."""

import json
import pickle

import pytest

from repro.compiler.cache import (
    CompileCache,
    cache_key,
    code_version,
    options_fingerprint,
)
from repro.compiler.config import ruleset_to_config
from repro.compiler.pipeline import (
    CompilerOptions,
    compile_pattern,
    compile_ruleset,
)
from repro.resilience.budget import Budget, BudgetExceededError
from repro.resilience.errors import ReproError

PATTERNS = ["ab{3}c", "x{2,5}y", "[a-f]{4}", "foo|bar"]


def _config_json(ruleset):
    """Canonical serialisation for byte-level ruleset comparison."""
    return json.dumps(ruleset_to_config(ruleset), sort_keys=True)


class TestCacheKey:
    def test_stable_across_calls(self):
        opts = CompilerOptions()
        assert cache_key("a{3}b", opts) == cache_key("a{3}b", opts)

    def test_pattern_changes_key(self):
        opts = CompilerOptions()
        assert cache_key("a{3}b", opts) != cache_key("a{4}b", opts)

    def test_artifact_relevant_options_change_key(self):
        base = CompilerOptions()
        assert cache_key("a{3}b", base) != cache_key(
            "a{3}b", CompilerOptions(bv_size=16)
        )
        assert cache_key("a{3}b", base) != cache_key(
            "a{3}b", CompilerOptions(unfold_threshold=2)
        )

    def test_runtime_only_knobs_do_not_change_key(self):
        base = CompilerOptions()
        timed = CompilerOptions(budget=Budget(deadline_s=1.0))
        assert options_fingerprint(base) == options_fingerprint(timed)
        assert cache_key("a{3}b", base) == cache_key("a{3}b", timed)

    def test_reduce_level_changes_key(self):
        base = CompilerOptions()
        for level in (0, 1):
            off = CompilerOptions(reduce_level=level)
            assert options_fingerprint(base) != options_fingerprint(off)
            assert cache_key("a{3}b", base) != cache_key("a{3}b", off)

    def test_fingerprint_covers_every_compiler_option(self):
        """Stale-fingerprint guard: every ``CompilerOptions`` field must
        be a deliberate include/exclude in ``options_fingerprint``.  A
        new field lands here first — decide whether it changes the
        compiled artifact, then extend the fingerprint (or this set)."""
        import dataclasses

        fields = {f.name for f in dataclasses.fields(CompilerOptions)}
        fingerprinted = {"bv_size", "unfold_threshold", "reduce_level", "arch"}
        runtime_only = {"budget"}  # limits partially fingerprinted below
        assert fields == fingerprinted | runtime_only

    def test_fingerprint_carries_anchor_semantics_marker(self):
        # Anchors used to be stripped at parse time; the marker keeps
        # artifacts from the stripped regime apart from gated ones even
        # when the code version is pinned (tests, packaged caches).
        assert "anchors-v1" in options_fingerprint(CompilerOptions())

    def test_anchored_patterns_get_distinct_keys(self):
        opts = CompilerOptions()
        keys = {
            cache_key(p, opts)
            for p in ("ab", "^ab", "ab$", "^ab$", r"\bab")
        }
        assert len(keys) == 5

    def test_cached_anchored_artifact_keeps_gates(self):
        cache = CompileCache()
        opts = CompilerOptions()
        compiled = compile_pattern("^ab$", 0, opts)
        assert compiled.anchors is not None
        cache.put("^ab$", opts, compiled)
        hit = cache.get("^ab$", opts, regex_id=3)
        assert hit is not None and hit.regex_id == 3
        assert hit.anchors is not None
        assert hit.anchors.scan_nfa.gated

    def test_code_version_changes_key(self):
        opts = CompilerOptions()
        assert cache_key("a{3}b", opts, version="aaaa") != cache_key(
            "a{3}b", opts, version="bbbb"
        )

    def test_code_version_is_cached_and_hexlike(self):
        assert code_version() == code_version()
        int(code_version(), 16)


class TestMemoryLayer:
    def test_miss_then_hit(self):
        cache = CompileCache()
        opts = CompilerOptions()
        assert cache.get("a{3}b", opts) is None
        compiled = compile_pattern("a{3}b", 0, opts)
        cache.put("a{3}b", opts, compiled)
        hit = cache.get("a{3}b", opts)
        assert hit is not None
        assert hit.nbva.match_ends(b"aaab") == compiled.nbva.match_ends(b"aaab")
        assert cache.hits == 1 and cache.misses == 1

    def test_rebadges_regex_id(self):
        cache = CompileCache()
        opts = CompilerOptions()
        cache.put("a{3}b", opts, compile_pattern("a{3}b", 0, opts))
        hit = cache.get("a{3}b", opts, regex_id=7)
        assert hit.regex_id == 7
        # The stored entry is untouched.
        assert cache.get("a{3}b", opts, regex_id=0).regex_id == 0

    def test_lru_eviction(self):
        cache = CompileCache(max_entries=2)
        opts = CompilerOptions()
        for i, pattern in enumerate(PATTERNS[:3]):
            cache.put(pattern, opts, compile_pattern(pattern, i, opts))
        assert cache.evictions == 1
        assert cache.get(PATTERNS[0], opts) is None  # oldest evicted
        assert cache.get(PATTERNS[2], opts) is not None

    def test_reduced_and_unreduced_artifacts_never_cross_hit(self):
        """A reduced artifact must never satisfy a ``--no-reduce``
        compile (or vice versa): the automata differ state-for-state."""
        cache = CompileCache()
        on = CompilerOptions()
        off = CompilerOptions(reduce_level=0)
        cache.put("(ab|cb)d", on, compile_pattern("(ab|cb)d", 0, on))
        assert cache.get("(ab|cb)d", off) is None
        cache.put("(ab|cb)d", off, compile_pattern("(ab|cb)d", 0, off))
        hit_on = cache.get("(ab|cb)d", on)
        hit_off = cache.get("(ab|cb)d", off)
        assert hit_on.ah.num_states < hit_off.ah.num_states
        assert hit_on.reduction_summary["merged_follow"] == 1
        assert hit_off.reduction_summary["level"] == 0

    def test_rejects_degenerate_bounds(self):
        with pytest.raises(ValueError):
            CompileCache(max_entries=0)
        with pytest.raises(ValueError):
            CompileCache(max_disk_bytes=0)


class TestDiskLayer:
    def test_roundtrip_across_instances(self, tmp_path):
        opts = CompilerOptions()
        writer = CompileCache(cache_dir=str(tmp_path))
        writer.put("a{3}b", opts, compile_pattern("a{3}b", 0, opts))

        reader = CompileCache(cache_dir=str(tmp_path))
        hit = reader.get("a{3}b", opts)
        assert hit is not None
        assert reader.disk_hits == 1
        assert hit.nbva.match_ends(b"xaaab") == [4]

    def test_corrupt_entry_is_dropped_and_recompiled(self, tmp_path):
        opts = CompilerOptions()
        cache = CompileCache(cache_dir=str(tmp_path))
        cache.put("a{3}b", opts, compile_pattern("a{3}b", 0, opts))
        key = cache.key_for("a{3}b", opts)
        path = tmp_path / key[:2] / f"{key}.pkl"
        path.write_bytes(b"\x80garbage")

        fresh = CompileCache(cache_dir=str(tmp_path))
        assert fresh.get("a{3}b", opts) is None
        assert fresh.corrupt == 1
        assert not path.exists()

    def test_stale_version_is_treated_as_corrupt(self, tmp_path):
        opts = CompilerOptions()
        old = CompileCache(cache_dir=str(tmp_path), version="old0")
        old.put("a{3}b", opts, compile_pattern("a{3}b", 0, opts))
        key = old.key_for("a{3}b", opts)
        path = tmp_path / key[:2] / f"{key}.pkl"
        # Same key on disk, different code version inside the payload.
        new = CompileCache(cache_dir=str(tmp_path), version="old0")
        payload = pickle.loads(path.read_bytes())
        path.write_bytes(pickle.dumps(("new0", payload[1])))
        assert new.get("a{3}b", opts) is None
        assert new.corrupt == 1

    def test_disk_eviction_respects_byte_cap(self, tmp_path):
        opts = CompilerOptions()
        probe = CompileCache(cache_dir=str(tmp_path))
        probe.put(PATTERNS[0], opts, compile_pattern(PATTERNS[0], 0, opts))
        entry_bytes = probe.cache_info()["disk_bytes"]
        probe.clear()

        cache = CompileCache(
            cache_dir=str(tmp_path), max_disk_bytes=int(entry_bytes * 2.5)
        )
        for i, pattern in enumerate(PATTERNS):
            cache.put(pattern, opts, compile_pattern(pattern, i, opts))
        assert cache.evictions >= 1
        assert cache.cache_info()["disk_bytes"] <= entry_bytes * 2.5

    def test_clear_empties_both_layers(self, tmp_path):
        opts = CompilerOptions()
        cache = CompileCache(cache_dir=str(tmp_path))
        cache.put("a{3}b", opts, compile_pattern("a{3}b", 0, opts))
        cache.clear()
        assert cache.cache_info()["entries"] == 0
        assert cache.cache_info()["disk_bytes"] == 0


class TestCompileRulesetCache:
    def test_warm_recompile_hits_every_pattern(self):
        cache = CompileCache()
        cold = compile_ruleset(PATTERNS, cache=cache)
        assert cache.misses == len(PATTERNS) and cache.hits == 0
        warm = compile_ruleset(PATTERNS, cache=cache)
        assert cache.hits == len(PATTERNS)
        assert [r.regex_id for r in warm.regexes] == [
            r.regex_id for r in cold.regexes
        ]
        for a, b in zip(cold.regexes, warm.regexes):
            assert a.pattern == b.pattern
            assert a.nbva.match_ends(b"aaabxx") == b.nbva.match_ends(b"aaabxx")

    def test_cached_ruleset_config_identical(self):
        cache = CompileCache()
        cold = compile_ruleset(PATTERNS, cache=cache)
        warm = compile_ruleset(PATTERNS, cache=cache)
        assert _config_json(cold) == _config_json(warm)

    def test_shared_cache_across_rulesets(self):
        cache = CompileCache()
        compile_ruleset(PATTERNS[:2], cache=cache)
        compile_ruleset(PATTERNS, cache=cache)  # 2 hits + 2 misses
        assert cache.hits == 2
        assert cache.misses == 4


class TestParallelCompile:
    def test_jobs_matches_serial_output(self):
        serial = compile_ruleset(PATTERNS, jobs=1)
        parallel = compile_ruleset(PATTERNS, jobs=2)
        assert _config_json(serial) == _config_json(parallel)
        assert [r.regex_id for r in parallel.regexes] == [0, 1, 2, 3]

    def test_jobs_with_quarantine_preserves_ids(self):
        patterns = ["ab", "bad(", "cd", "e**"]
        serial = compile_ruleset(patterns, jobs=1)
        parallel = compile_ruleset(patterns, jobs=2)
        assert sorted(serial.quarantined) == sorted(parallel.quarantined) == [1, 3]
        assert _config_json(serial) == _config_json(parallel)

    def test_jobs_fills_shared_cache(self):
        cache = CompileCache()
        compile_ruleset(PATTERNS, cache=cache, jobs=2)
        assert cache.misses == len(PATTERNS)
        compile_ruleset(PATTERNS, cache=cache, jobs=2)
        assert cache.hits == len(PATTERNS)

    def test_deadline_abort_propagates(self):
        options = CompilerOptions(budget=Budget(deadline_s=0.0))
        with pytest.raises(BudgetExceededError) as excinfo:
            compile_ruleset(["a{2,60}b{2,60}"] * 8, options, jobs=2)
        assert excinfo.value.kind == "deadline"


class TestErrorTaxonomy:
    def test_compile_pattern_raises_typed_errors_only(self):
        """Invalid inputs surface as ReproError, never bare ValueError."""
        for bad in ["a(", "a**", "[z-a]", "a{5,2}"]:
            with pytest.raises(ReproError):
                compile_pattern(bad)

    def test_compile_ruleset_quarantines_with_error_codes(self):
        """The batch API never leaks exceptions: structured reports only."""
        ruleset = compile_ruleset(["ab", "a(", "a**"])
        assert sorted(ruleset.quarantined) == [1, 2]
        for report in ruleset.quarantined.values():
            assert report.error_code is not None
