"""JSON configuration round-trip tests (§7 step 5)."""

import json

import pytest

from repro.compiler.config import (
    action_from_mnemonic,
    action_to_mnemonic,
    dump_config,
    load_config,
    ruleset_to_config,
)
from repro.compiler.pipeline import CompilerOptions, compile_ruleset

PATTERNS = ["ab{100}c", "hello", "x[0-9]{12}y", "a{1,50}b"]


@pytest.fixture(scope="module")
def ruleset():
    return compile_ruleset(PATTERNS)


class TestActionMnemonics:
    @pytest.mark.parametrize(
        "text",
        ["copy", "shift", "set1", "r(5)", "r(1,16)", "r(5).set1", "r(1,16).set1"],
    )
    def test_roundtrip(self, text):
        assert action_to_mnemonic(action_from_mnemonic(text)) == text

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            action_from_mnemonic("frobnicate")


class TestConfigDocument:
    def test_document_is_json_serialisable(self, ruleset):
        doc = ruleset_to_config(ruleset)
        text = json.dumps(doc)
        assert "regexes" in doc and json.loads(text) == doc

    def test_contains_all_sections(self, ruleset):
        doc = ruleset_to_config(ruleset)
        for key in ("options", "encoding", "regexes", "mapping", "rejected"):
            assert key in doc

    def test_rewritten_form_recorded(self, ruleset):
        doc = ruleset_to_config(ruleset)
        entry = next(r for r in doc["regexes"] if r["pattern"] == "ab{100}c")
        assert "{" in entry["rewritten"]  # kept as counting blocks


class TestRoundTrip:
    def test_automata_equivalent_after_reload(self, ruleset, tmp_path):
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        loaded = load_config(str(path))
        assert loaded.patterns == [r.pattern for r in ruleset.regexes]
        data = b"ab" + b"b" * 99 + b"c hello x0123456789 01y ab"
        for original, reloaded in zip(ruleset.regexes, loaded.automata):
            assert reloaded.match_ends(data) == original.ah.match_ends(data)

    def test_mapping_survives(self, ruleset, tmp_path):
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        loaded = load_config(str(path))
        assert loaded.mapping.num_tiles == ruleset.mapping.num_tiles
        assert loaded.mapping.placements == ruleset.mapping.placements

    def test_encoding_survives(self, ruleset, tmp_path):
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        loaded = load_config(str(path))
        assert loaded.encoding.group_masks == ruleset.encoding.group_masks
        assert loaded.encoding.code_of_byte == ruleset.encoding.code_of_byte

    def test_options_survive(self, tmp_path):
        options = CompilerOptions(bv_size=16, unfold_threshold=8)
        ruleset = compile_ruleset(["ab{40}c"], options)
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        loaded = load_config(str(path))
        assert loaded.bv_size == 16
        assert loaded.unfold_threshold == 8

    def test_version_checked(self, ruleset, tmp_path):
        path = tmp_path / "config.json"
        dump_config(ruleset, str(path))
        doc = json.loads(path.read_text())
        doc["format_version"] = 99
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError):
            load_config(str(path))
