"""CAM nibble-product encoding tests (CAMA [16])."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler.cam import (
    CamRow,
    decode_rows,
    encode_class,
    rows_for_class,
    rows_for_ruleset,
)
from repro.regex.charclass import DIGIT, CharClass


class TestCamRow:
    def test_product_match(self):
        row = CamRow(low_mask=0b10, high_mask=0b1000)  # low=1, high=3
        assert row.matches(0x31)
        assert not row.matches(0x32)
        assert not row.matches(0x21)

    def test_to_class_is_product(self):
        row = CamRow(low_mask=0b11, high_mask=0b1)
        assert set(row.to_class()) == {0x00, 0x01}

    def test_pack_roundtrip(self):
        row = CamRow(low_mask=0xABCD, high_mask=0x1234)
        assert CamRow.decode(row.encode()) == row

    def test_validation(self):
        with pytest.raises(ValueError):
            CamRow(low_mask=0, high_mask=1)
        with pytest.raises(ValueError):
            CamRow(low_mask=1 << 16, high_mask=1)


class TestEncoding:
    def test_singleton_one_row(self):
        assert rows_for_class(CharClass.from_char(ord("a"))) == 1

    def test_any_one_row(self):
        rows = encode_class(CharClass.any())
        assert len(rows) == 1
        assert rows[0].low_mask == 0xFFFF and rows[0].high_mask == 0xFFFF

    def test_digits_one_row(self):
        """0x30-0x39: low nibbles {0..9}, one high nibble — a product."""
        assert rows_for_class(DIGIT) == 1

    def test_lowercase_needs_two_rows(self):
        """a-z spans 0x61-0x7a: high nibble 6 has lows 1-f, 7 has 0-a."""
        cc = CharClass.from_range(ord("a"), ord("z"))
        assert rows_for_class(cc) == 2

    def test_word_class(self):
        from repro.regex.charclass import WORD

        rows = encode_class(WORD)
        assert decode_rows(rows) == WORD

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            encode_class(CharClass.empty())

    def test_ruleset_pressure(self):
        stes, rows = rows_for_ruleset(
            [DIGIT, CharClass.from_range(ord("a"), ord("z"))]
        )
        assert (stes, rows) == (2, 3)


@given(st.sets(st.integers(min_value=0, max_value=255), min_size=1))
def test_encode_decode_roundtrip(byte_set):
    cc = CharClass.from_chars(byte_set)
    rows = encode_class(cc)
    assert decode_rows(rows) == cc
    # Every byte matches exactly the rows that contain it.
    for byte in range(256):
        assert any(row.matches(byte) for row in rows) == (byte in cc)


@given(st.sets(st.integers(min_value=0, max_value=255), min_size=1))
def test_row_count_bounded_by_high_nibbles(byte_set):
    cc = CharClass.from_chars(byte_set)
    used_highs = {b >> 4 for b in byte_set}
    assert rows_for_class(cc) <= len(used_highs)
