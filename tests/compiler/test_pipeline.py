"""End-to-end compilation pipeline tests (§7)."""

import pytest

from repro.compiler.pipeline import (
    CompilerOptions,
    compile_pattern,
    compile_ruleset,
    swap_words,
    virtual_width,
)


class TestVirtualWidth:
    @pytest.mark.parametrize(
        "bound,width",
        [(1, 8), (8, 8), (9, 16), (16, 16), (17, 32), (33, 64), (64, 64)],
    )
    def test_rounding(self, bound, width):
        assert virtual_width(bound) == width

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            virtual_width(65)

    def test_swap_words(self):
        assert swap_words(8) == 1
        assert swap_words(64) == 8
        assert swap_words(16) == 2


class TestCompilePattern:
    def test_paper_snort_example(self):
        """url=.{8000}: 8004 unfolded STEs vs ~270 in BVAP (§3)."""
        compiled = compile_pattern("url=.{8000}")
        assert compiled.unfolded_states == 8004
        assert 250 <= compiled.num_stes <= 290

    def test_bounded_repetition_compression(self):
        compiled = compile_pattern("ab{147}c")
        assert compiled.unfolded_states == 149
        assert compiled.num_stes < 20

    def test_small_bounds_fully_unfolded(self):
        compiled = compile_pattern("a(ba){3}c")
        assert compiled.num_bv_stes == 0

    def test_options_change_result(self):
        tight = compile_pattern(
            "ab{10}c", options=CompilerOptions(unfold_threshold=12)
        )
        loose = compile_pattern(
            "ab{10}c", options=CompilerOptions(unfold_threshold=4)
        )
        assert tight.num_bv_stes == 0
        assert loose.num_bv_stes > 0

    def test_bv_size_affects_block_count(self):
        big = compile_pattern("ab{128}c", options=CompilerOptions(bv_size=64))
        small = compile_pattern("ab{128}c", options=CompilerOptions(bv_size=16))
        assert small.num_bv_stes > big.num_bv_stes

    def test_virtual_widths_and_demand(self):
        compiled = compile_pattern("ab{40}c")
        assert compiled.virtual_widths() == [64]
        demand = compiled.demand()
        assert demand.bv_stes == compiled.num_bv_stes
        assert demand.max_swap_words == 8

    def test_unfolded_states_none_when_huge(self):
        compiled = compile_pattern("a.{3000}b", unfolded_cap=1000)
        assert compiled.unfolded_states is None


class TestCompileRuleset:
    PATTERNS = ["ab{100}c", "hello", "x[0-9]{12}y", "bad(", "a{1,50}b"]

    def test_bad_patterns_rejected_not_fatal(self):
        ruleset = compile_ruleset(self.PATTERNS)
        assert len(ruleset.regexes) == 4
        assert 3 in ruleset.rejected

    def test_encoding_covers_all_classes(self):
        ruleset = compile_ruleset(self.PATTERNS)
        for regex in ruleset.regexes:
            for state in regex.ah.states:
                assert ruleset.encoding.is_exact_for(state.cc)

    def test_mapping_covers_all_regexes(self):
        ruleset = compile_ruleset(self.PATTERNS)
        for regex in ruleset.regexes:
            assert regex.regex_id in ruleset.mapping.placements

    def test_aggregate_stats(self):
        ruleset = compile_ruleset(self.PATTERNS)
        assert ruleset.num_stes == sum(r.num_stes for r in ruleset.regexes)
        assert 0 < ruleset.bv_ste_ratio() < 1

    def test_oversized_regex_rejected_with_reason(self):
        ruleset = compile_ruleset(["a" * 5000])  # 5000 plain STEs > array
        assert ruleset.rejected
        assert not ruleset.regexes

    def test_empty_ruleset(self):
        ruleset = compile_ruleset([])
        assert ruleset.num_stes == 0
        assert ruleset.bv_ste_ratio() == 0.0


class TestUnfoldFallback:
    """§6: regexes whose BV demand exceeds the hardware fall back to
    (partial) unfolding instead of being rejected."""

    def test_bv_heavy_regex_falls_back(self):
        # 40 counting blocks of bound 64 -> 40+ vector BVs per block chain
        # exceeds one array's 768 BVs only with a truly huge pattern, so
        # shrink the arch instead.
        from repro.compiler import ArchParams

        options = CompilerOptions(arch=ArchParams(bvs_per_tile=2, tiles_per_array=2))
        ruleset = compile_ruleset(["ab{200}c"], options)
        assert len(ruleset.regexes) == 1
        regex = ruleset.regexes[0]
        assert regex.num_bv_stes == 0  # fully unfolded fallback
        assert regex.num_stes == regex.unfolded_states

    def test_fallback_preserves_matching(self):
        from repro.compiler import ArchParams

        options = CompilerOptions(arch=ArchParams(bvs_per_tile=2, tiles_per_array=2))
        ruleset = compile_ruleset(["ab{100}c"], options)
        data = b"a" + b"b" * 100 + b"c"
        assert ruleset.regexes[0].ah.match_ends(data) == [101]

    def test_truly_oversized_still_rejected(self):
        from repro.compiler import ArchParams

        options = CompilerOptions(
            arch=ArchParams(bvs_per_tile=2, tiles_per_array=2, stes_per_tile=64)
        )
        ruleset = compile_ruleset(["ab{2000}c"], options)
        assert ruleset.rejected  # unfolding does not fit either
