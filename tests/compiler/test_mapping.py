"""Tile/array/bank mapping tests (§6)."""

import pytest

from repro.compiler.mapping import (
    ArchParams,
    AutomatonDemand,
    MappingError,
    map_automata,
)

ARCH = ArchParams()


def demand(rid, plain, bv=0, words=0):
    return AutomatonDemand(
        regex_id=rid, plain_stes=plain, bv_stes=bv, max_swap_words=words
    )


class TestArchParams:
    def test_paper_capacities(self):
        """Each bank supports 16,384 STEs, 3,072 of them BV-STEs (§6)."""
        assert ARCH.stes_per_bank == 16384
        assert ARCH.bvs_per_bank == 3072
        assert ARCH.max_tile_repetition_bound == 3072

    def test_array_capacity(self):
        assert ARCH.stes_per_array == 4096


class TestSmallAutomata:
    def test_single_tile(self):
        result = map_automata([demand(0, 10, 2)])
        assert result.num_tiles == 1
        assert result.placements[0] == [0]

    def test_packing_multiple(self):
        result = map_automata([demand(i, 100, 10) for i in range(5)])
        # 100 STEs each: two fit per 256-STE tile
        assert result.num_tiles == 3

    def test_bv_capacity_forces_new_tile(self):
        result = map_automata([demand(i, 10, 30) for i in range(3)])
        # 30 BVs each, 48 per tile: one per tile after the first pair fails
        assert result.num_tiles == 3

    def test_decreasing_order_placement(self):
        """Largest BV consumers placed first (greedy FFD)."""
        result = map_automata([demand(0, 10, 1), demand(1, 10, 48)])
        assert result.placements[1] == [0]  # big one got the first tile


class TestLargeAutomata:
    def test_plain_spill_across_tiles(self):
        result = map_automata([demand(0, 1000, 10)])
        assert len(result.placements[0]) == 4  # ceil(1010/256)

    def test_bv_spill_across_tiles(self):
        """BV chains linked by reads may span tiles (url=.{8000} case)."""
        result = map_automata([demand(0, 50, 100)])
        assert len(result.placements[0]) >= 3  # ceil(100/48) for BVs
        placed_bvs = sum(t.bvs_used for t in result.tiles)
        assert placed_bvs == 100

    def test_large_starts_at_array_boundary(self):
        result = map_automata([demand(0, 200, 0), demand(1, 4000, 0)])
        tiles_of_1 = result.placements[1]
        assert tiles_of_1[0] % ARCH.tiles_per_array == 0

    def test_rejects_over_array_stes(self):
        with pytest.raises(MappingError):
            map_automata([demand(0, 5000, 0)])

    def test_rejects_over_array_bvs(self):
        with pytest.raises(MappingError):
            map_automata([demand(0, 10, 800)])


class TestUtilisation:
    def test_ste_utilisation(self):
        result = map_automata([demand(0, 128, 0)])
        assert result.ste_utilization() == pytest.approx(0.5)

    def test_bv_utilisation(self):
        result = map_automata([demand(0, 10, 24)])
        assert result.bv_utilization() == pytest.approx(0.5)

    def test_counts(self):
        result = map_automata([demand(i, 256, 0) for i in range(20)])
        assert result.num_tiles == 20
        assert result.num_arrays == 2
        assert result.num_banks == 1

    def test_tiles_of_array(self):
        result = map_automata([demand(i, 256, 0) for i in range(20)])
        assert len(result.tiles_of_array(0)) == 16
        assert len(result.tiles_of_array(1)) == 4

    def test_swap_words_recorded(self):
        result = map_automata([demand(0, 10, 4, words=8)])
        assert result.tiles[0].max_swap_words == 8
        assert result.tiles[0].bvm_active()

    def test_empty_ruleset(self):
        result = map_automata([])
        assert result.num_tiles == 0
        assert result.ste_utilization() == 0.0
