"""Reduction-equivalence battery for ``compiler.reduce``.

The quotient pass (follow/right and left merges over the position
automaton, composed with dead-state pruning) must be *exactly* match
stream preserving: pinned worked examples verify the individual merge
rules and the counter-scope merge barrier, a Hypothesis fuzzer checks
the reduced pipeline against the unreduced one across every engine, and
an accept/reject differential checks both against Python's ``re``.
"""

import random
import re

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.automata import NFA
from repro.automata.ah import is_counter_free
from repro.regex import CharClass
from repro.compiler import (
    DEFAULT_REDUCE_LEVEL,
    REDUCE_LEVELS,
    CompilerOptions,
    build_scan_nfa,
    compile_ast,
    compile_pattern,
    reduce_ah,
    reduce_nfa,
)
from repro.compiler.pipeline import build_unfolded_nfa
from repro.matching import ENGINES, PatternSet
from repro.regex.generate import random_regex

REDUCED = CompilerOptions(bv_size=8, unfold_threshold=2)
UNREDUCED = CompilerOptions(bv_size=8, unfold_threshold=2, reduce_level=0)

SUMMARY_KEYS = {
    "level",
    "states_before",
    "states_after",
    "bv_stes_before",
    "bv_stes_after",
    "edges_before",
    "edges_after",
    "pruned",
    "merged_follow",
    "merged_left",
    "passes",
}


class TestWorkedExamples:
    def test_follow_equivalent_states_merge(self):
        """``(ab|cb)d``: the two ``b`` positions share their follow set
        and reporting behaviour — a follow (right) merge collapses them."""
        compiled = compile_pattern("(ab|cb)d", options=REDUCED)
        summary = compiled.reduction_summary
        assert summary["merged_follow"] == 1
        assert summary["states_after"] == summary["states_before"] - 1
        assert compiled.ah.num_states == summary["states_after"]

    def test_left_equivalent_states_merge(self):
        """``ab|ac``: the two ``a`` positions have identical predecessor
        sets — only the left quotient (level 2) can merge them."""
        compiled = compile_pattern("ab|ac", options=REDUCED)
        summary = compiled.reduction_summary
        assert summary["merged_left"] == 1
        assert summary["states_after"] == summary["states_before"] - 1

    def test_level_1_performs_follow_but_not_left_merges(self):
        level1 = CompilerOptions(bv_size=8, unfold_threshold=2, reduce_level=1)
        follow = compile_pattern("(ab|cb)d", options=level1)
        assert follow.reduction_summary["merged_follow"] == 1
        left_only = compile_pattern("ab|ac", options=level1)
        assert left_only.reduction_summary["merged_left"] == 0
        assert (
            left_only.reduction_summary["states_after"]
            == left_only.reduction_summary["states_before"]
        )

    def test_shared_affix_alternation_collapses(self):
        """The unfactored ``(coamz|cobmz|cocmz)`` group: both affix
        copies collapse, leaving one spelled-out prefix/suffix plus the
        three distinguishing middles."""
        reduced = compile_pattern("(coamz|cobmz|cocmz)", options=REDUCED)
        plain = compile_pattern("(coamz|cobmz|cocmz)", options=UNREDUCED)
        assert reduced.ah.num_states == plain.ah.num_states - 8
        for data in (b"coamz", b"cocmz", b"codmz", b"xcobmzy"):
            assert reduced.ah.match_ends(data) == plain.ah.match_ends(data)

    @pytest.mark.parametrize("pattern", ["x{2,60}y", "ab{2,4}c", "a.{3}b"])
    def test_counter_scope_is_a_merge_barrier(self, pattern):
        """Counting states never merge: scopes, state count, and the
        match stream are identical with the pass on and off."""
        reduced = compile_pattern(pattern, options=REDUCED)
        plain = compile_pattern(pattern, options=UNREDUCED)
        summary = reduced.reduction_summary
        assert summary["merged_follow"] == 0
        assert summary["merged_left"] == 0
        assert reduced.ah.num_states == plain.ah.num_states
        assert len(reduced.ah.scopes) == len(plain.ah.scopes)
        for mine, theirs in zip(reduced.ah.scopes, plain.ah.scopes):
            assert (mine.low, mine.high) == (theirs.low, theirs.high)
        data = b"xx" + b"ab" * 30 + b"abbbc" + b"y"
        assert reduced.ah.match_ends(data) == plain.ah.match_ends(data)

    def test_counter_free_projection_reduces_to_fixpoint(self):
        """Counter-free automata have no frozen states, so a second
        application of the pass finds nothing left to merge."""
        compiled = compile_pattern("(ab|cb)d|ab|ac", options=REDUCED)
        assert is_counter_free(compiled.ah)
        again, summary = reduce_ah(compiled.ah)
        assert again.num_states == compiled.ah.num_states
        assert summary["merged_follow"] == 0
        assert summary["merged_left"] == 0
        assert summary["pruned"] == 0


class TestSummary:
    def test_summary_fields_and_property(self):
        compiled = compile_pattern("(ab|cb)d", options=REDUCED)
        summary = compiled.reduction_summary
        assert set(summary) == SUMMARY_KEYS
        assert summary["level"] == DEFAULT_REDUCE_LEVEL
        assert summary["passes"] >= 1
        assert summary["edges_after"] <= summary["edges_before"]
        # The property returns a copy: mutating it cannot corrupt the
        # compiled artifact.
        summary["states_after"] = -1
        assert compiled.reduction_summary["states_after"] != -1

    def test_level_0_reports_prune_only_summary(self):
        compiled = compile_pattern("(ab|cb)d", options=UNREDUCED)
        summary = compiled.reduction_summary
        assert summary["level"] == 0
        assert summary["merged_follow"] == 0
        assert summary["merged_left"] == 0
        assert summary["states_after"] == summary["states_before"]

    def test_pruned_counts_fold_into_summary(self):
        """Dead states dropped by ``automata.optimize.prune`` are folded
        into the same summary as the merge counts."""
        compiled = compile_pattern("ab|ac", options=REDUCED)
        summary = compiled.reduction_summary
        assert summary["pruned"] >= 0
        assert (
            summary["states_before"]
            - summary["pruned"]
            - summary["merged_follow"]
            - summary["merged_left"]
            == summary["states_after"]
        )


class TestLevelValidation:
    @pytest.mark.parametrize("level", [-1, 3, 99])
    def test_reduce_ah_rejects_unknown_levels(self, level):
        compiled = compile_pattern("ab", options=UNREDUCED)
        with pytest.raises(ValueError):
            reduce_ah(compiled.ah, level=level)

    @pytest.mark.parametrize("level", [-1, 3])
    def test_reduce_nfa_rejects_unknown_levels(self, level):
        nfa = build_unfolded_nfa(compile_pattern("ab", options=UNREDUCED).parsed)
        with pytest.raises(ValueError):
            reduce_nfa(nfa, level=level)

    @pytest.mark.parametrize("level", [-1, 3])
    def test_compiler_options_reject_unknown_levels(self, level):
        with pytest.raises(ValueError):
            CompilerOptions(reduce_level=level)

    def test_every_declared_level_compiles(self):
        for level in REDUCE_LEVELS:
            compiled = compile_pattern(
                "ab|ac", options=CompilerOptions(reduce_level=level)
            )
            assert compiled.reduction_summary["level"] == level


class TestReduceNFA:
    def test_unfolded_nfa_quotient_preserves_matches(self):
        parsed = compile_pattern("ab|ac", options=UNREDUCED).parsed
        nfa = build_unfolded_nfa(parsed)
        reduced = reduce_nfa(nfa)
        assert reduced.num_states < nfa.num_states
        for data in (b"ab", b"ac", b"aa", b"xaby", b"abac"):
            assert reduced.match_ends(data) == nfa.match_ends(data)

    def test_level_0_only_prunes(self):
        parsed = compile_pattern("ab|ac", options=UNREDUCED).parsed
        nfa = build_unfolded_nfa(parsed)
        assert reduce_nfa(nfa, level=0).num_states == nfa.num_states

    def test_dead_states_are_pruned(self):
        a, b = CharClass.from_char(ord("a")), CharClass.from_char(ord("b"))
        # 0 -a-> 1(final); 2 is reachable but dead, 3 is unreachable.
        nfa = NFA(
            classes=[a, b, a, b],
            transitions=[[1, 2], [], [], [1]],
            initial={0},
            final={1},
        )
        reduced = reduce_nfa(nfa)
        assert reduced.num_states == 2
        assert reduced.match_ends(b"ab") == nfa.match_ends(b"ab")

    def test_match_empty_flag_is_carried(self):
        parsed = compile_pattern("a?b|a?c", options=UNREDUCED).parsed
        nfa = build_unfolded_nfa(parsed)
        nfa.match_empty = True
        assert getattr(reduce_nfa(nfa), "match_empty", False)

    def test_build_scan_nfa_respects_compiled_level(self):
        """The counting scan path reduces exactly when the artifact was
        compiled with reduction on."""
        pattern = "(ab|cb)dz{2,9}(ab|cb)d"
        reduced = build_scan_nfa(compile_pattern(pattern, options=REDUCED))
        plain = build_scan_nfa(compile_pattern(pattern, options=UNREDUCED))
        assert reduced.num_states < plain.num_states
        data = b"abd" + b"z" * 5 + b"cbd"
        assert reduced.match_ends(data) == plain.match_ends(data)


# --- property fuzz: reduced pipeline == unreduced pipeline --------------


def _stream(data):
    return bytes(
        data.draw(
            st.lists(
                st.sampled_from([ord("a"), ord("b"), ord("c")]),
                min_size=0,
                max_size=30,
            )
        )
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_reduced_streams_identical_on_every_engine(seed, data):
    """The headline property: for random regexes and inputs, every
    engine produces a byte-identical match stream with the reduction
    pass on and off."""
    rng = random.Random(seed)
    node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=7)
    pattern = str(node)
    stream = _stream(data)
    for engine in ENGINES:
        reduced = PatternSet([pattern], options=REDUCED, engine=engine)
        plain = PatternSet([pattern], options=UNREDUCED, engine=engine)
        assert reduced.scan(stream) == plain.scan(stream), (pattern, engine)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_reduced_matcher_end_sets_are_exact(seed, data):
    """Denser variant on the in-process matchers: the *end position
    sets* (not just accept/reject) agree at every reduction level, and
    counter scopes survive untouched."""
    rng = random.Random(seed)
    node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=7)
    stream = _stream(data)
    plain = compile_ast(node, str(node), options=UNREDUCED)
    expected = plain.ah.match_ends(stream)
    for level in (1, 2):
        options = CompilerOptions(bv_size=8, unfold_threshold=2, reduce_level=level)
        compiled = compile_ast(node, str(node), options=options)
        assert compiled.ah.match_ends(stream) == expected, (str(node), level)
        assert len(compiled.ah.scopes) == len(plain.ah.scopes)
    reduced_nfa = reduce_nfa(build_unfolded_nfa(plain.parsed))
    assert reduced_nfa.match_ends(stream) == build_unfolded_nfa(
        plain.parsed
    ).match_ends(stream)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000), data=st.data())
def test_reduced_accepts_iff_python_re(seed, data):
    """Accept/reject differential against an independent oracle: the
    reduced automaton finds a match iff Python's ``re`` does."""
    rng = random.Random(seed)
    node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=7)
    pattern = str(node)
    try:
        oracle = re.compile(pattern.encode(), re.DOTALL)
    except re.error:
        assume(False)
    # Empty-width matches are reported through a separate flag by the
    # engines; keep the differential on non-nullable patterns.
    assume(oracle.match(b"") is None)
    stream = _stream(data)
    compiled = compile_ast(node, pattern, options=REDUCED)
    assert bool(compiled.ah.match_ends(stream)) == bool(
        oracle.search(stream)
    ), pattern


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_reduction_is_idempotent(seed):
    rng = random.Random(seed)
    node = random_regex(rng, alphabet=b"ab", depth=3, max_bound=7)
    compiled = compile_ast(node, str(node), options=REDUCED)
    again, summary = reduce_ah(compiled.ah)
    assert again.num_states == compiled.ah.num_states, str(node)
    assert summary["merged_follow"] == summary["merged_left"] == 0
