"""Hypothesis property tests for the tile mapper."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.mapping import ArchParams, AutomatonDemand, map_automata

ARCH = ArchParams()

demand_strategy = st.builds(
    AutomatonDemand,
    regex_id=st.integers(min_value=0, max_value=10_000),
    plain_stes=st.integers(min_value=0, max_value=2000),
    bv_stes=st.integers(min_value=0, max_value=400),
    max_swap_words=st.integers(min_value=0, max_value=8),
)


def unique_ids(demands):
    seen = set()
    out = []
    for demand in demands:
        if demand.regex_id in seen:
            continue
        seen.add(demand.regex_id)
        if demand.total_stes == 0:
            continue
        out.append(demand)
    return out


@settings(max_examples=80, deadline=None)
@given(st.lists(demand_strategy, max_size=25))
def test_mapping_invariants(raw_demands):
    demands = unique_ids(raw_demands)
    result = map_automata(demands, ARCH)

    # 1. Capacity: no tile over budget.
    for tile in result.tiles:
        assert 0 <= tile.stes_used <= ARCH.stes_per_tile
        assert 0 <= tile.bvs_used <= ARCH.bvs_per_tile

    # 2. Conservation: everything placed exactly once.
    assert sum(t.stes_used for t in result.tiles) == sum(
        d.total_stes for d in demands
    )
    assert sum(t.bvs_used for t in result.tiles) == sum(
        d.bv_stes for d in demands
    )

    # 3. Every demand has a placement onto existing tiles.
    assert set(result.placements) == {d.regex_id for d in demands}
    for tiles in result.placements.values():
        assert tiles  # at least one tile
        for index in tiles:
            assert 0 <= index < result.num_tiles

    # 4. Multi-tile spills stay within one array.
    per = ARCH.tiles_per_array
    for tiles in result.placements.values():
        arrays = {index // per for index in tiles}
        assert len(arrays) == 1

    # 5. Swap-word LUT data covers every tile hosting BVs.
    for demand in demands:
        if demand.bv_stes and demand.max_swap_words:
            home = result.placements[demand.regex_id][0]
            hosting = [
                result.tiles[i]
                for i in result.placements[demand.regex_id]
                if result.tiles[i].bvs_used
            ]
            assert any(
                t.max_swap_words >= demand.max_swap_words for t in hosting
            ) or not hosting


@settings(max_examples=40, deadline=None)
@given(st.lists(demand_strategy, max_size=15))
def test_mapping_deterministic(raw_demands):
    demands = unique_ids(raw_demands)
    one = map_automata(demands, ARCH)
    two = map_automata(demands, ARCH)
    assert one.placements == two.placements
    assert [(t.stes_used, t.bvs_used) for t in one.tiles] == [
        (t.stes_used, t.bvs_used) for t in two.tiles
    ]
