"""CLI tests (argument parsing and end-to-end command flows)."""

import json
import logging

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def input_file(tmp_path):
    path = tmp_path / "input.bin"
    path.write_bytes(b"xx" + b"a" + b"b" * 20 + b"c" + b"yy")
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compile_defaults(self):
        args = build_parser().parse_args(["compile", "ab{3}c"])
        assert args.bv_size == 64
        assert args.unfold_threshold == 4

    def test_arch_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "a", "--arch", "GPU"])

    @pytest.mark.parametrize(
        "verb,extra",
        [
            ("compile", ["a"]),
            ("scan", ["a"]),
            ("simulate", ["a"]),
            ("trace", ["a"]),
            ("dataset", ["Snort"]),
        ],
    )
    def test_common_flags_on_every_verb(self, verb, extra):
        args = build_parser().parse_args(
            [verb, *extra, "-v", "--seed", "7", "--metrics-out", "m.json"]
        )
        assert args.verbose is True
        assert args.seed == 7
        assert args.metrics_out == "m.json"

    def test_seed_defaults_to_zero(self):
        assert build_parser().parse_args(["dataset", "Snort"]).seed == 0

    def test_trace_verb_default_trace_out(self):
        assert build_parser().parse_args(["trace", "a"]).trace_out == "trace.json"


class TestSeedAndVerbose:
    def test_dataset_same_seed_is_deterministic(self, capsys):
        main(["dataset", "Snort", "-n", "8", "--seed", "11"])
        first = capsys.readouterr().out
        main(["dataset", "Snort", "-n", "8", "--seed", "11"])
        assert capsys.readouterr().out == first

    def test_dataset_different_seeds_differ(self, capsys):
        main(["dataset", "Snort", "-n", "8", "--seed", "11"])
        first = capsys.readouterr().out
        main(["dataset", "Snort", "-n", "8", "--seed", "12"])
        assert capsys.readouterr().out != first

    def test_seed_applies_to_stream_generation(self, tmp_path, capsys):
        paths = [tmp_path / "a.bin", tmp_path / "b.bin"]
        for path in paths:
            main(["dataset", "YARA", "-n", "3", "--seed", "5",
                  "--stream", "256", "--stream-output", str(path)])
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_verbose_sets_debug_level(self, input_file, capsys):
        main(["scan", "a", "-i", input_file, "-v"])
        assert logging.getLogger().getEffectiveLevel() == logging.DEBUG
        main(["scan", "a", "-i", input_file])
        assert logging.getLogger().getEffectiveLevel() == logging.INFO

    def test_scan_summary_logged_to_stderr(self, input_file, capsys):
        main(["scan", "ab{20}c", "-i", input_file])
        err = capsys.readouterr().err
        assert "1 matches" in err and "repro.cli" in err


class TestScan:
    def test_scan_prints_matches(self, input_file, capsys):
        assert main(["scan", "ab{20}c", "-i", input_file]) == 0
        out = capsys.readouterr().out
        assert "ab{20}c" in out

    def test_scan_engine_choice(self, input_file, capsys):
        for engine in ("ah", "nfa", "fused"):
            main(["scan", "ab{20}c", "-i", input_file, "--engine", engine])
        outputs = capsys.readouterr().out.strip().splitlines()
        assert outputs[0] == outputs[1] == outputs[2]

    def test_scan_sharded_engine_matches_fused(self, input_file, capsys):
        main(["scan", "ab{20}c", "xx", "-i", input_file, "--engine", "fused"])
        fused_out = capsys.readouterr().out
        assert main([
            "scan", "ab{20}c", "xx", "-i", input_file,
            "--engine", "sharded", "--shards", "2",
        ]) == 0
        assert capsys.readouterr().out == fused_out

    def test_patterns_from_file(self, tmp_path, input_file, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text("ab{20}c\nxx\n")
        main(["scan", f"@{rules}", "-i", input_file])
        out = capsys.readouterr().out
        assert "xx" in out and "ab{20}c" in out

    def test_empty_pattern_file_rejected(self, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text("\n")
        with pytest.raises(SystemExit):
            main(["scan", f"@{rules}", "-i", "-"])


class TestBench:
    def test_bench_explicit_patterns(self, input_file, tmp_path, capsys):
        record_path = tmp_path / "bench.json"
        assert main([
            "bench", "ab{20}c", "xx", "-i", input_file,
            "--engines", "fused,nfa", "--repeats", "1",
            "--json", str(record_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "fused-vs-nfa" in out
        record = json.loads(record_path.read_text())
        assert record["benchmark"] == "fused_scan"
        assert record["grid"][0]["num_patterns"] == 2
        assert "fused_speedup" in record["grid"][0]

    def test_bench_synthetic_workload(self, capsys):
        assert main([
            "bench", "--dataset", "RegexLib", "--num-patterns", "2",
            "--input-size", "512", "--engines", "fused,nfa",
            "--repeats", "1", "--seed", "3",
        ]) == 0
        assert "scan bench" in capsys.readouterr().out

    def test_bench_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["bench", "a", "-i", "-", "--engines", "quantum"])

    def test_bench_sharded_engine(self, input_file, capsys):
        assert main([
            "bench", "ab{20}c", "xx", "-i", input_file,
            "--engines", "fused,sharded", "--shards", "2", "--repeats", "1",
        ]) == 0
        assert "sharded" in capsys.readouterr().out


class TestCompile:
    def test_compile_writes_config(self, tmp_path, capsys):
        out_path = tmp_path / "config.json"
        assert main(["compile", "ab{100}c", "-o", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["regexes"][0]["pattern"] == "ab{100}c"
        assert "compiled 1 patterns" in capsys.readouterr().out

    def test_compile_reports_rejections(self, tmp_path, capsys):
        out_path = tmp_path / "config.json"
        main(["compile", "ok", "(((", "-o", str(out_path)])
        captured = capsys.readouterr()
        assert "rejected" in captured.err


class TestSimulate:
    @pytest.mark.parametrize("arch", ["BVAP", "BVAP-S", "CAMA", "eAP", "CA"])
    def test_simulate_all_architectures(self, arch, input_file, capsys):
        assert main(["simulate", "ab{20}c", "-i", input_file, "--arch", arch]) == 0
        out = capsys.readouterr().out
        assert f"architecture     : {arch}" in out
        assert "matches          : 1" in out


class TestDataset:
    def test_dataset_generation(self, capsys):
        assert main(["dataset", "Prosite", "-n", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5

    def test_dataset_stream_output(self, tmp_path, capsys):
        stream_path = tmp_path / "stream.bin"
        main(
            [
                "dataset",
                "YARA",
                "-n",
                "3",
                "--stream",
                "200",
                "--stream-output",
                str(stream_path),
            ]
        )
        assert stream_path.stat().st_size == 200

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["dataset", "NotADataset"])


class TestSimulateFromConfig:
    def test_config_programmed_run(self, tmp_path, input_file, capsys):
        config_path = tmp_path / "config.json"
        main(["compile", "ab{20}c", "-o", str(config_path)])
        capsys.readouterr()
        assert main(["simulate", "--config", str(config_path),
                     "-i", input_file]) == 0
        out = capsys.readouterr().out
        assert "matches          : 1" in out

    def test_config_with_baseline_arch_rejected(self, tmp_path, input_file):
        config_path = tmp_path / "config.json"
        main(["compile", "a", "-o", str(config_path)])
        with pytest.raises(SystemExit):
            main(["simulate", "--config", str(config_path),
                  "--arch", "CAMA", "-i", input_file])


class TestPatternFormats:
    def test_prosite_format(self, tmp_path, capsys):
        path = tmp_path / "in.bin"
        path.write_bytes(b"ACAKCD")
        assert main(["scan", "--format", "prosite", "C-x(2)-C.",
                     "-i", str(path)]) == 0
        assert "C.{2}C" in capsys.readouterr().out

    def test_snort_format(self, tmp_path, capsys):
        rules = tmp_path / "rules.txt"
        rules.write_text(
            'alert tcp any any -> any 80 (pcre:"/ab{3}c/"; sid:1;)\n'
        )
        path = tmp_path / "in.bin"
        path.write_bytes(b"zabbbcz")
        assert main(["scan", "--format", "snort", f"@{rules}",
                     "-i", str(path)]) == 0
        assert "ab{3}c" in capsys.readouterr().out


class TestStructuredErrors:
    def test_syntax_error_prints_caret_and_exits_2(self, capsys):
        assert main(["scan", "bad(", "-i", "/dev/null"]) == 2
        err = capsys.readouterr().err
        assert "error[E_SYNTAX]" in err
        assert "^" in err

    def test_json_error_object(self, capsys):
        assert main(["scan", "bad(", "--json", "-i", "/dev/null"]) == 2
        doc = json.loads(capsys.readouterr().out)
        assert doc["error"]["code"] == "E_SYNTAX"
        assert doc["error"]["pattern"] == "bad("
        assert doc["error"]["pos"] == 4

    def test_budget_flags_reach_the_compiler(self, capsys):
        # The rewrite splits {2,200} into <=64-wide scopes, so a budget
        # tighter than one hardware BV must trip on the first scope.
        assert main(["scan", "a{2,200}b", "--max-bv-width", "16",
                     "-i", "/dev/null"]) == 2
        assert "error[E_BUDGET]" in capsys.readouterr().err

    def test_quarantine_flag_keeps_scanning(self, input_file, capsys):
        assert main(["scan", "ab{20}c", "bad(", "--quarantine",
                     "-i", input_file]) == 0
        captured = capsys.readouterr()
        assert "rejected pattern 1" in captured.err
        assert "ab{20}c" in captured.out

    def test_compile_quarantines_and_succeeds(self, tmp_path, capsys):
        out_path = tmp_path / "config.json"
        assert main(["compile", "ok", "(((", "-o", str(out_path)]) == 0
        captured = capsys.readouterr()
        assert "E_SYNTAX" in captured.err
        assert "1 quarantined" in captured.out


class TestFaultsVerb:
    def test_masked_run_exits_zero(self, input_file, capsys):
        assert main(["faults", "ab{20}c", "-i", input_file]) == 0
        out = capsys.readouterr().out
        assert "first divergence : none" in out
        assert "injected faults  : cam=0, bv=0, counter=0" in out

    def test_divergence_reported(self, capsys):
        assert main(["faults", "ab{3}c", "--input-size", "512",
                     "--cam-rate", "0.5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "first divergence : cycle" in out

    def test_same_seed_same_report(self, capsys):
        argv = ["faults", "ab{3}c", "--input-size", "256",
                "--cam-rate", "0.3", "--bv-rate", "0.2", "--seed", "7"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_json_report(self, capsys):
        assert main(["faults", "ab{3}c", "--input-size", "128",
                     "--cam-rate", "0.5", "--seed", "1", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seed"] == 1
        assert doc["injected_by_kind"]["cam"] == len(doc["injected"])

    def test_expect_divergence_fails_when_masked(self, input_file):
        assert main(["faults", "ab{20}c", "-i", input_file,
                     "--expect-divergence"]) == 1

    def test_expect_divergence_passes_when_diverged(self):
        assert main(["faults", "ab{3}c", "--input-size", "512",
                     "--cam-rate", "0.5", "--seed", "3",
                     "--expect-divergence"]) == 0


class TestChaosVerb:
    def test_chaos_campaign_exits_zero_when_lossless(self, capsys):
        assert main(["faults", "ab{2,4}c", "xy", "--chaos", "--seed", "7",
                     "--input-size", "8192", "--chunk-bytes", "512",
                     "--max-restarts", "1"]) == 0
        out = capsys.readouterr().out
        assert "stream parity    : byte-identical" in out
        assert "injected faults  :" in out

    def test_chaos_json_report(self, capsys):
        assert main(["faults", "ab{2,4}c", "xy", "--chaos", "--seed", "7",
                     "--input-size", "8192", "--chunk-bytes", "512",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["seed"] == 7
        assert doc["diverged"] is False
        assert doc["golden_matches"] == doc["chaos_matches"]
        assert len(doc["faults"]) == 2

    def test_chaos_same_seed_same_schedule(self, capsys):
        argv = ["faults", "ab{2,4}c", "--chaos", "--seed", "11",
                "--input-size", "4096", "--chunk-bytes", "512", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["faults"] == second["faults"]

    def test_chaos_kind_parsing_rejected_early(self, capsys):
        assert main(["faults", "ab", "--chaos", "--chaos-kinds", "meteor",
                     "--input-size", "256"]) == 2
        assert "error[E_FAULT]" in capsys.readouterr().err

    def test_supervision_flags_reach_the_budget(self):
        args = build_parser().parse_args(
            ["scan", "a", "--max-restarts", "3", "--checkpoint-chunks", "16"]
        )
        assert args.max_restarts == 3
        assert args.checkpoint_chunks == 16
        from repro.cli import _budget

        budget = _budget(args)
        assert budget.restart is not None
        assert budget.restart.max_restarts == 3
        assert budget.restart.checkpoint_chunks == 16

    def test_no_restart_flag_means_no_policy(self):
        args = build_parser().parse_args(["scan", "a"])
        from repro.cli import _budget

        assert _budget(args).restart is None
